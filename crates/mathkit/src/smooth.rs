//! One-dimensional signal smoothing filters.
//!
//! The NEMESYS segmenter (Kleber et al., WOOT 2018) smooths the delta of
//! the bit-congruence sequence with a Gaussian filter (σ = 0.6) before
//! searching for inflection points; [`gaussian_filter`] reproduces that
//! step with reflected boundary handling like SciPy's
//! `ndimage.gaussian_filter1d`.

/// Applies a 1-D Gaussian filter with standard deviation `sigma`.
///
/// The kernel is truncated at `4 * sigma` (rounded up) on each side and the
/// signal is extended by reflection at the boundaries. A non-positive
/// `sigma` returns the input unchanged.
///
/// # Examples
///
/// ```
/// let noisy = vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
/// let smooth = mathkit::smooth::gaussian_filter(&noisy, 1.0);
/// // Smoothing pulls alternating values towards their mean.
/// assert!(smooth.iter().all(|&v| v > 0.2 && v < 0.8));
/// ```
pub fn gaussian_filter(signal: &[f64], sigma: f64) -> Vec<f64> {
    if signal.is_empty() || sigma <= 0.0 {
        return signal.to_vec();
    }
    let radius = (4.0 * sigma).ceil() as usize;
    let mut kernel = Vec::with_capacity(2 * radius + 1);
    let denom = 2.0 * sigma * sigma;
    for i in 0..=(2 * radius) {
        let d = i as f64 - radius as f64;
        kernel.push((-d * d / denom).exp());
    }
    let norm: f64 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= norm;
    }

    let n = signal.len() as isize;
    let reflect = |idx: isize| -> usize {
        // scipy 'reflect' mode: (d c b a | a b c d | d c b a)
        let mut i = idx;
        loop {
            if i < 0 {
                i = -i - 1;
            } else if i >= n {
                i = 2 * n - i - 1;
            } else {
                return i as usize;
            }
        }
    };

    (0..signal.len())
        .map(|center| {
            kernel
                .iter()
                .enumerate()
                .map(|(k, &w)| w * signal[reflect(center as isize + k as isize - radius as isize)])
                .sum()
        })
        .collect()
}

/// First discrete difference: `out[i] = signal[i + 1] - signal[i]`.
///
/// Returns an empty vector for signals shorter than two samples.
pub fn delta(signal: &[f64]) -> Vec<f64> {
    if signal.len() < 2 {
        return Vec::new();
    }
    signal.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Indices of strict local minima (both neighbors strictly larger, plateaus
/// take their first index).
pub fn local_minima(signal: &[f64]) -> Vec<usize> {
    extrema(signal, |a, b| a < b)
}

/// Indices of strict local maxima (both neighbors strictly smaller,
/// plateaus take their first index).
pub fn local_maxima(signal: &[f64]) -> Vec<usize> {
    extrema(signal, |a, b| a > b)
}

fn extrema(signal: &[f64], better: impl Fn(f64, f64) -> bool) -> Vec<usize> {
    let n = signal.len();
    if n < 3 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut i = 1;
    while i < n - 1 {
        if better(signal[i], signal[i - 1]) {
            // Walk over a potential plateau.
            let start = i;
            let mut j = i;
            while j + 1 < n && signal[j + 1] == signal[i] {
                j += 1;
            }
            if j + 1 < n && better(signal[i], signal[j + 1]) {
                out.push(start);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_preserves_constant() {
        let s = vec![3.5; 20];
        let f = gaussian_filter(&s, 0.6);
        for v in f {
            assert!((v - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_preserves_mass_of_impulse() {
        let mut s = vec![0.0; 21];
        s[10] = 1.0;
        let f = gaussian_filter(&s, 1.0);
        let total: f64 = f.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Peak stays at the impulse.
        let peak = f
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 10);
    }

    #[test]
    fn gaussian_zero_sigma_is_identity() {
        let s = vec![1.0, -2.0, 3.0];
        assert_eq!(gaussian_filter(&s, 0.0), s);
    }

    #[test]
    fn delta_basic() {
        assert_eq!(delta(&[1.0, 3.0, 2.0]), vec![2.0, -1.0]);
        assert!(delta(&[1.0]).is_empty());
    }

    #[test]
    fn minima_and_maxima() {
        let s = [3.0, 1.0, 2.0, 0.5, 4.0, 4.0, 1.0];
        assert_eq!(local_minima(&s), vec![1, 3]);
        assert_eq!(local_maxima(&s), vec![2, 4]);
    }

    #[test]
    fn plateau_minimum_takes_first_index() {
        let s = [2.0, 1.0, 1.0, 1.0, 2.0];
        assert_eq!(local_minima(&s), vec![1]);
    }

    #[test]
    fn short_signals_have_no_extrema() {
        assert!(local_minima(&[1.0, 0.0]).is_empty());
        assert!(local_maxima(&[]).is_empty());
    }
}
