//! Least-squares cubic B-spline smoothing.
//!
//! The ε auto-configuration smooths the k-NN dissimilarity ECDF with a
//! spline before knee detection (paper §III-D, "Kneedle requires smoothing
//! of the ECDF, for which we use a spline"). The original implementation
//! uses SciPy's smoothing splines; we implement least-squares fitting of a
//! clamped uniform cubic B-spline where the smoothing strength maps to the
//! number of interior knots (fewer knots → smoother curve). The mapping is
//! a documented substitution (DESIGN.md §4.5).

/// A fitted clamped cubic B-spline.
///
/// # Examples
///
/// ```
/// use mathkit::SmoothingSpline;
///
/// let xs: Vec<f64> = (0..50).map(|i| i as f64 / 49.0).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
/// let sp = SmoothingSpline::fit(&xs, &ys, 6)?;
/// let y = sp.eval(0.5);
/// assert!((y - 0.25).abs() < 0.01);
/// # Ok::<(), mathkit::spline::SplineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SmoothingSpline {
    /// Full clamped knot vector (degree-3, so 4 repeated knots at each end).
    knots: Vec<f64>,
    /// Control coefficients, one per basis function.
    coeffs: Vec<f64>,
    degree: usize,
}

/// Error fitting a [`SmoothingSpline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplineError {
    /// Fewer than two distinct data points, or mismatched slice lengths.
    InsufficientData,
    /// Inputs contained NaN/infinite values or x was not sorted ascending.
    InvalidInput,
    /// The least-squares system was singular (too many knots for the data).
    Singular,
}

impl std::fmt::Display for SplineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplineError::InsufficientData => write!(f, "need at least two distinct data points"),
            SplineError::InvalidInput => write!(f, "inputs must be finite and x sorted ascending"),
            SplineError::Singular => write!(f, "least-squares system is singular"),
        }
    }
}

impl std::error::Error for SplineError {}

impl SmoothingSpline {
    /// Fits a cubic B-spline with `interior_knots` uniformly spaced interior
    /// knots to the data by linear least squares.
    ///
    /// `xs` must be sorted ascending; ties are allowed. More interior knots
    /// follow the data more closely; zero interior knots yield a single
    /// cubic over the whole range. The knot count is capped so the system
    /// stays overdetermined.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two distinct x values exist, inputs
    /// are non-finite or unsorted, or the normal equations are singular.
    pub fn fit(xs: &[f64], ys: &[f64], interior_knots: usize) -> Result<Self, SplineError> {
        const DEGREE: usize = 3;
        if xs.len() != ys.len() || xs.len() < 2 {
            return Err(SplineError::InsufficientData);
        }
        if xs.iter().chain(ys).any(|v| !v.is_finite()) {
            return Err(SplineError::InvalidInput);
        }
        if xs.windows(2).any(|w| w[0] > w[1]) {
            return Err(SplineError::InvalidInput);
        }
        let (x0, x1) = (xs[0], xs[xs.len() - 1]);
        if x0 == x1 {
            return Err(SplineError::InsufficientData);
        }
        // Keep the system overdetermined: #coefficients <= #points.
        let max_interior = xs.len().saturating_sub(DEGREE + 1);
        let m = interior_knots.min(max_interior);
        let n_coef = m + DEGREE + 1;

        let mut knots = Vec::with_capacity(n_coef + DEGREE + 1);
        for _ in 0..=DEGREE {
            knots.push(x0);
        }
        for i in 1..=m {
            knots.push(x0 + (x1 - x0) * i as f64 / (m + 1) as f64);
        }
        for _ in 0..=DEGREE {
            knots.push(x1);
        }

        // Normal equations B^T B c = B^T y with a tiny ridge for stability.
        let mut ata = vec![0.0f64; n_coef * n_coef];
        let mut aty = vec![0.0f64; n_coef];
        let mut basis_buf = vec![0.0f64; n_coef];
        for (&x, &y) in xs.iter().zip(ys) {
            eval_basis_row(&knots, DEGREE, n_coef, x, &mut basis_buf);
            for i in 0..n_coef {
                let bi = basis_buf[i];
                if bi == 0.0 {
                    continue;
                }
                aty[i] += bi * y;
                for j in 0..n_coef {
                    let bj = basis_buf[j];
                    if bj != 0.0 {
                        ata[i * n_coef + j] += bi * bj;
                    }
                }
            }
        }
        for i in 0..n_coef {
            ata[i * n_coef + i] += 1e-10;
        }
        let coeffs = solve_dense(&mut ata, &mut aty, n_coef).ok_or(SplineError::Singular)?;
        Ok(Self {
            knots,
            coeffs,
            degree: DEGREE,
        })
    }

    /// Evaluates the fitted spline at `x`, clamping `x` to the fitted range.
    pub fn eval(&self, x: f64) -> f64 {
        let n_coef = self.coeffs.len();
        let mut row = vec![0.0f64; n_coef];
        let x0 = self.knots[self.degree];
        let x1 = self.knots[self.knots.len() - self.degree - 1];
        let xc = x.clamp(x0, x1);
        eval_basis_row(&self.knots, self.degree, n_coef, xc, &mut row);
        row.iter().zip(&self.coeffs).map(|(b, c)| b * c).sum()
    }

    /// Evaluates the spline at each of the given points.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }
}

/// Fills `out` with the values of all `n_coef` B-spline basis functions at
/// `x` (Cox–de Boor recursion, clamped knot vector).
fn eval_basis_row(knots: &[f64], degree: usize, n_coef: usize, x: f64, out: &mut [f64]) {
    out.iter_mut().for_each(|v| *v = 0.0);
    // Find the knot span index `mu` with knots[mu] <= x < knots[mu+1].
    let last = knots.len() - degree - 2;
    let mut mu = knots.partition_point(|&k| k <= x).saturating_sub(1);
    mu = mu.clamp(degree, last);

    // Triangular scheme: N[j] holds the value of basis function mu-degree+j.
    let mut n = [0.0f64; 8]; // degree <= 3 -> at most 4 entries used
    n[0] = 1.0;
    for d in 1..=degree {
        let mut saved = 0.0;
        for (j, nj) in n.iter_mut().enumerate().take(d) {
            let left_idx = mu + 1 + j - d;
            let right_idx = mu + 1 + j;
            let denom = knots[right_idx] - knots[left_idx];
            let temp = if denom != 0.0 { *nj / denom } else { 0.0 };
            *nj = saved + (knots[right_idx] - x) * temp;
            saved = (x - knots[left_idx]) * temp;
        }
        n[d] = saved;
    }
    for (j, &nj) in n.iter().enumerate().take(degree + 1) {
        let idx = mu + j - degree;
        if idx < n_coef {
            out[idx] = nj;
        }
    }
}

/// Gaussian elimination with partial pivoting on a dense system; consumes
/// the inputs. Returns `None` when the pivot degenerates.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for r in (col + 1)..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-14 {
            return None;
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        let d = a[col * n + col];
        for r in (col + 1)..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in (row + 1)..n {
            acc -= a[row * n + c] * x[c];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
    }

    #[test]
    fn fits_line_exactly() {
        let xs = grid(30);
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let sp = SmoothingSpline::fit(&xs, &ys, 4).unwrap();
        for &x in &xs {
            assert!((sp.eval(x) - (2.0 * x + 1.0)).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn fits_cubic_exactly_with_zero_interior_knots() {
        let xs = grid(20);
        let ys: Vec<f64> = xs.iter().map(|x| x * x * x - x).collect();
        let sp = SmoothingSpline::fit(&xs, &ys, 0).unwrap();
        for &x in &xs {
            assert!((sp.eval(x) - (x * x * x - x)).abs() < 1e-6);
        }
    }

    #[test]
    fn smooths_noise() {
        // A noisy constant should be fit close to the constant with few knots.
        let xs = grid(101);
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, _)| 5.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let sp = SmoothingSpline::fit(&xs, &ys, 3).unwrap();
        for &x in &xs {
            assert!((sp.eval(x) - 5.0).abs() < 0.05);
        }
    }

    #[test]
    fn clamps_outside_range() {
        let xs = grid(10);
        let ys = xs.clone();
        let sp = SmoothingSpline::fit(&xs, &ys, 0).unwrap();
        assert!((sp.eval(-1.0) - 0.0).abs() < 1e-6);
        assert!((sp.eval(2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn caps_knots_for_small_data() {
        let xs = vec![0.0, 0.5, 1.0, 1.5, 2.0];
        let ys = vec![0.0, 1.0, 0.0, 1.0, 0.0];
        // Requesting far more knots than data points must still succeed.
        let sp = SmoothingSpline::fit(&xs, &ys, 50).unwrap();
        assert!(sp.eval(1.0).is_finite());
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            SmoothingSpline::fit(&[0.0], &[1.0], 2).unwrap_err(),
            SplineError::InsufficientData
        );
        assert_eq!(
            SmoothingSpline::fit(&[0.0, 1.0], &[1.0, f64::NAN], 2).unwrap_err(),
            SplineError::InvalidInput
        );
        assert_eq!(
            SmoothingSpline::fit(&[1.0, 0.0], &[1.0, 2.0], 2).unwrap_err(),
            SplineError::InvalidInput
        );
        assert_eq!(
            SmoothingSpline::fit(&[1.0, 1.0], &[1.0, 2.0], 2).unwrap_err(),
            SplineError::InsufficientData
        );
    }

    #[test]
    fn handles_duplicate_x_values() {
        let xs = vec![0.0, 0.0, 0.5, 0.5, 1.0, 1.0, 1.5, 2.0];
        let ys = vec![0.0, 0.2, 0.5, 0.5, 1.0, 1.1, 1.4, 2.0];
        let sp = SmoothingSpline::fit(&xs, &ys, 2).unwrap();
        assert!(sp.eval(1.0).is_finite());
    }
}
