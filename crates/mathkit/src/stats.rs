//! Descriptive statistics, percent rank, correlation and entropy.

/// Arithmetic mean of a sample; `None` for an empty slice.
///
/// ```
/// assert_eq!(mathkit::stats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(mathkit::stats::mean(&[]), None);
/// ```
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Median of a sample; `None` for an empty slice.
///
/// For an even number of samples the mean of the two middle values is
/// returned.
///
/// ```
/// assert_eq!(mathkit::stats::median(&[3.0, 1.0, 2.0]), Some(2.0));
/// assert_eq!(mathkit::stats::median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
/// ```
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median: NaN in sample"));
    let n = v.len();
    if n % 2 == 1 {
        Some(v[n / 2])
    } else {
        Some((v[n / 2 - 1] + v[n / 2]) / 2.0)
    }
}

/// Population standard deviation; `None` for an empty slice.
///
/// The paper's cluster-split criterion uses the standard deviation of value
/// occurrence counts (§III-F), which is a population (not sample) statistic.
///
/// ```
/// let sd = mathkit::stats::std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
/// assert!((sd - 2.0).abs() < 1e-12);
/// ```
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Minimum of a sample ignoring NaN; `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| match acc {
            None => Some(x),
            Some(a) => Some(a.min(x)),
        })
}

/// Maximum of a sample ignoring NaN; `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| match acc {
            None => Some(x),
            Some(a) => Some(a.max(x)),
        })
}

/// Percent rank `PR(sample, v)`: the percentage of observations in `sample`
/// that are strictly below `v`, plus half of those equal to `v`.
///
/// This is the definition of Roscoe (1975) referenced by the paper for the
/// cluster-split criterion: `PR(c', F) = 95` means 95 % of the value counts
/// in cluster `c'` lie below the occurrence frequency `F`.
///
/// Returns a value in `[0, 100]`; `None` for an empty sample.
///
/// ```
/// let pr = mathkit::stats::percent_rank(&[1.0, 2.0, 3.0, 4.0], 3.5).unwrap();
/// assert!((pr - 75.0).abs() < 1e-12);
/// ```
pub fn percent_rank(sample: &[f64], v: f64) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    let below = sample.iter().filter(|&&x| x < v).count() as f64;
    let equal = sample.iter().filter(|&&x| x == v).count() as f64;
    Some(100.0 * (below + 0.5 * equal) / sample.len() as f64)
}

/// Pearson correlation coefficient of two equally long samples.
///
/// Returns `None` when fewer than two points are given, when the lengths
/// differ, or when either sample has zero variance.
///
/// ```
/// let r = mathkit::stats::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Shannon entropy of a byte string, in bits per byte (`[0, 8]`).
///
/// Used by the FieldHunter baseline to tell random-looking fields
/// (transaction IDs, signatures) from structured ones.
///
/// ```
/// assert_eq!(mathkit::stats::byte_entropy(&[0xAA; 64]), 0.0);
/// let uniform: Vec<u8> = (0..=255).collect();
/// assert!((mathkit::stats::byte_entropy(&uniform) - 8.0).abs() < 1e-12);
/// ```
pub fn byte_entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Normalized Shannon entropy of arbitrary hashable symbols (`[0, 1]`).
///
/// `1.0` means all symbols are distinct, `0.0` means a single symbol.
/// Entropy over value *multisets*, normalized by `log2(n)`, as used by
/// FieldHunter's message-type and transaction-id heuristics.
pub fn normalized_value_entropy<T: std::hash::Hash + Eq>(values: &[T]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mut counts: std::collections::HashMap<&T, usize> = std::collections::HashMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    let n = values.len() as f64;
    let h: f64 = counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum();
    h / n.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_is_none() {
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn mean_single() {
        assert_eq!(mean(&[42.0]), Some(42.0));
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(median(&[1.0, 9.0]), Some(5.0));
        assert_eq!(median(&[9.0, 1.0, 5.0]), Some(5.0));
    }

    #[test]
    fn std_dev_constant_is_zero() {
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), Some(0.0));
    }

    #[test]
    fn percent_rank_bounds() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(percent_rank(&s, 0.0), Some(0.0));
        assert_eq!(percent_rank(&s, 10.0), Some(100.0));
    }

    #[test]
    fn percent_rank_ties_get_half_weight() {
        let s = [1.0, 2.0, 2.0, 3.0];
        // one below, two equal -> (1 + 1) / 4 = 50 %
        assert_eq!(percent_rank(&s, 2.0), Some(50.0));
    }

    #[test]
    fn pearson_anticorrelated() {
        let r = pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_zero_variance() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn pearson_rejects_mismatched_lengths() {
        assert_eq!(pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn entropy_two_symbols() {
        let data = [0u8, 1, 0, 1];
        assert!((byte_entropy(&data) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_entropy_all_distinct_is_one() {
        let vals = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        assert!((normalized_value_entropy(&vals) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_entropy_single_symbol_is_zero() {
        let vals = vec![7u32; 16];
        assert_eq!(normalized_value_entropy(&vals), 0.0);
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [f64::NAN, 2.0, -1.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(2.0));
    }
}
