//! Property-based tests for the statistics toolbox.

use mathkit::{ecdf::Ecdf, kneedle, smooth, spline::SmoothingSpline, stats};
use proptest::prelude::*;

fn finite_sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn ecdf_is_monotone_and_bounded(sample in finite_sample()) {
        let e = Ecdf::new(sample.clone()).unwrap();
        let mut probes: Vec<f64> = sample.clone();
        probes.push(f64::MIN);
        probes.push(f64::MAX);
        let mut last = -1.0;
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for x in sorted {
            let y = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y >= last);
            last = y;
        }
        prop_assert_eq!(e.eval(f64::MAX), 1.0);
    }

    #[test]
    fn ecdf_quantile_roundtrip(sample in finite_sample(), q in 0.01f64..1.0) {
        let e = Ecdf::new(sample).unwrap();
        let v = e.quantile(q);
        // Evaluating at the quantile must reach at least level q.
        prop_assert!(e.eval(v) + 1e-12 >= q);
    }

    #[test]
    fn mean_within_min_max(sample in finite_sample()) {
        let m = stats::mean(&sample).unwrap();
        let lo = stats::min(&sample).unwrap();
        let hi = stats::max(&sample).unwrap();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn median_within_min_max(sample in finite_sample()) {
        let m = stats::median(&sample).unwrap();
        let lo = stats::min(&sample).unwrap();
        let hi = stats::max(&sample).unwrap();
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn percent_rank_in_range(sample in finite_sample(), v in -1e6f64..1e6) {
        let pr = stats::percent_rank(&sample, v).unwrap();
        prop_assert!((0.0..=100.0).contains(&pr));
    }

    #[test]
    fn pearson_in_range(
        xs in prop::collection::vec(-1e3f64..1e3, 3..50),
        shift in -10f64..10.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + shift).collect();
        if let Some(r) = stats::pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn byte_entropy_bounds(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let h = stats::byte_entropy(&bytes);
        prop_assert!((0.0..=8.0 + 1e-9).contains(&h));
    }

    #[test]
    fn gaussian_filter_preserves_bounds(
        signal in prop::collection::vec(-100f64..100.0, 1..100),
        sigma in 0.1f64..3.0,
    ) {
        let out = smooth::gaussian_filter(&signal, sigma);
        prop_assert_eq!(out.len(), signal.len());
        let lo = stats::min(&signal).unwrap();
        let hi = stats::max(&signal).unwrap();
        for v in out {
            // Convolution with a normalized non-negative kernel cannot escape
            // the signal's range.
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn spline_interpolates_smooth_data_closely(n_knots in 0usize..8) {
        let xs: Vec<f64> = (0..60).map(|i| i as f64 / 59.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (2.0 * x).sin()).collect();
        let sp = SmoothingSpline::fit(&xs, &ys, n_knots).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            prop_assert!((sp.eval(x) - y).abs() < 0.2);
        }
    }

    #[test]
    fn kneedle_never_panics(
        ys in prop::collection::vec(0f64..1.0, 3..100),
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let mut sorted = ys.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let knees = kneedle::detect_knees(&xs, &sorted, &kneedle::KneedleParams::default());
        for k in knees {
            prop_assert!(k.index < xs.len());
        }
    }
}
