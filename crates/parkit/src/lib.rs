//! A minimal scoped work-stealing scheduler for disjoint-output data
//! parallelism.
//!
//! Every parallel stage of the pipeline has the same shape: an index
//! space `0..items` whose elements are processed by a pure function
//! writing to pre-allocated, per-index disjoint output slots. The ad-hoc
//! `thread::scope` + `AtomicUsize` blocks that used to be copy-pasted
//! across `dissim::matrix`, `dissim::kernel`, and `dissim::neighbor`
//! shared that shape but not their load-balancing logic; this crate
//! centralizes it behind two entry points:
//!
//! - [`for_each_chunk`]: covers `0..items` with disjoint, non-empty
//!   chunks, each handed to the callback exactly once.
//! - [`map_parts`]: like [`for_each_chunk`] but each worker folds the
//!   chunks it processes into its own accumulator; the per-worker
//!   accumulators are returned for the caller to merge.
//!
//! # Scheduling
//!
//! The index space is split evenly into one contiguous range per
//! worker. Each worker owns a *range deque* — a single packed
//! `AtomicU64` holding its `(lo, hi)` bounds:
//!
//! - the **owner** claims adaptively sized chunks from the *front*
//!   (`max(min_chunk, remaining / 8)`, so chunks shrink as the range
//!   drains and stragglers stay small);
//! - **thieves** claim roughly half the range from the *back* once
//!   their own deque is empty, install the loot as their new range, and
//!   go back to owner mode.
//!
//! All transitions go through compare-exchange on the packed word, so
//! any interleaving of pops and steals yields disjoint ranges. The
//! packed value fully encodes the work, which makes the classic ABA
//! hazard harmless: a stale compare-exchange can only succeed if the
//! deque again holds exactly the range the thief saw, in which case the
//! steal is valid for the current content.
//!
//! # Determinism
//!
//! The scheduler guarantees *exactly-once coverage*, not a reproducible
//! chunk order. Callers obtain deterministic (bit-identical) results by
//! construction instead: workers write only to disjoint output slots
//! indexed by item, or fold into per-worker accumulators whose merge is
//! order-independent (minima, k-smallest multisets, integer sums).

pub mod pool;

pub use pool::Pool;

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Largest supported index space: bounds are packed as two `u32`s.
pub const MAX_ITEMS: usize = u32::MAX as usize;

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// One worker's range deque: a packed `(lo, hi)` pair. The owner pops
/// chunks from the front, thieves halve it from the back.
struct RangeDeque {
    range: AtomicU64,
}

impl RangeDeque {
    fn new(r: Range<usize>) -> Self {
        Self {
            range: AtomicU64::new(pack(r.start as u32, r.end as u32)),
        }
    }

    /// Owner side: claim up to `max(min_chunk, remaining / 8)` items
    /// from the front.
    fn pop_front(&self, min_chunk: usize) -> Option<Range<usize>> {
        let mut cur = self.range.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let remaining = (hi - lo) as usize;
            let take = remaining.min((remaining / 8).max(min_chunk)) as u32;
            match self.range.compare_exchange_weak(
                cur,
                pack(lo + take, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo as usize..(lo + take) as usize),
                Err(v) => cur = v,
            }
        }
    }

    /// Thief side: claim the back half (rounded up) of the range.
    fn steal_back(&self) -> Option<Range<usize>> {
        let mut cur = self.range.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let steal = (hi - lo).div_ceil(2);
            match self.range.compare_exchange_weak(
                cur,
                pack(lo, hi - steal),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((hi - steal) as usize..hi as usize),
                Err(v) => cur = v,
            }
        }
    }

    /// Owner side: install stolen loot into this (empty) deque. Only
    /// the owner ever grows its deque, so a plain store is safe: any
    /// concurrent thief either saw the old (empty) value and fails its
    /// compare-exchange, or sees the new range and steals from it.
    fn install(&self, r: &Range<usize>) {
        self.range
            .store(pack(r.start as u32, r.end as u32), Ordering::Release);
    }
}

/// Sets the abort flag if the worker unwinds, so sibling workers spin-
/// waiting for `remaining == 0` exit instead of deadlocking the scope.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// Splits `0..items` into `parts` contiguous ranges differing in length
/// by at most one.
fn even_split(items: usize, parts: usize) -> Vec<Range<usize>> {
    let base = items / parts;
    let extra = items % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for w in 0..parts {
        let len = base + usize::from(w < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

struct Shared<'a, F> {
    deques: Vec<RangeDeque>,
    remaining: AtomicUsize,
    abort: AtomicBool,
    min_chunk: usize,
    f: &'a F,
}

fn worker<F: Fn(Range<usize>) + Sync>(w: usize, shared: &Shared<'_, F>) {
    let _guard = AbortOnPanic(&shared.abort);
    let me = &shared.deques[w];
    let n_workers = shared.deques.len();
    loop {
        while let Some(chunk) = me.pop_front(shared.min_chunk) {
            let len = chunk.len();
            (shared.f)(chunk);
            shared.remaining.fetch_sub(len, Ordering::AcqRel);
        }
        if shared.abort.load(Ordering::Acquire) {
            return;
        }
        // Own deque drained: go stealing, round-robin from the right.
        let mut stole = false;
        for off in 1..n_workers {
            if let Some(loot) = shared.deques[(w + off) % n_workers].steal_back() {
                me.install(&loot);
                stole = true;
                break;
            }
        }
        if !stole {
            if shared.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            // Other workers still hold in-flight chunks (or loot not yet
            // installed); yield until work reappears or everything is done.
            std::thread::yield_now();
        }
    }
}

/// Covers `0..items` with disjoint, non-empty chunks, invoking `f` on
/// each chunk exactly once across `threads` workers (the calling thread
/// is one of them).
///
/// `min_chunk` bounds the scheduling granularity from below: owners
/// claim `max(min_chunk, remaining / 8)` items at a time, so per-chunk
/// costs (claiming, cache effects of `f`'s writes) amortize while the
/// tail still splits finely enough to balance irregular item costs.
///
/// With `threads <= 1`, `items == 0`, or fewer than two chunks of work,
/// `f` runs inline on the calling thread — no threads are spawned.
///
/// # Panics
///
/// Panics if `items` exceeds [`MAX_ITEMS`], or propagates the first
/// panic raised by `f` (remaining chunks may be skipped, but all
/// workers terminate).
pub fn for_each_chunk<F>(threads: usize, items: usize, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    assert!(items <= MAX_ITEMS, "index space exceeds MAX_ITEMS");
    if items == 0 {
        return;
    }
    let min_chunk = min_chunk.max(1);
    // No point in more workers than minimum-size chunks.
    let threads = threads.clamp(1, items.div_ceil(min_chunk));
    if threads == 1 {
        f(0..items);
        return;
    }
    let shared = Shared {
        deques: even_split(items, threads)
            .into_iter()
            .map(RangeDeque::new)
            .collect(),
        remaining: AtomicUsize::new(items),
        abort: AtomicBool::new(false),
        min_chunk,
        f: &f,
    };
    std::thread::scope(|scope| {
        for w in 1..threads {
            let shared = &shared;
            scope.spawn(move || worker(w, shared));
        }
        worker(0, &shared);
    });
}

/// Like [`for_each_chunk`], but each worker threads a private
/// accumulator (seeded by `init`) through the chunks it processes; the
/// per-worker accumulators are returned for the caller to merge.
///
/// Which chunks land in which accumulator is **not** deterministic —
/// use this only for reductions whose merge is order- and
/// partition-independent (minima, k-smallest multisets, integer sums),
/// which is exactly what makes the final result bit-identical to a
/// serial fold.
pub fn map_parts<T, F>(
    threads: usize,
    items: usize,
    min_chunk: usize,
    init: impl Fn() -> T,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&mut T, Range<usize>) + Sync,
{
    if items == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let threads = threads.clamp(1, items.div_ceil(min_chunk));
    if threads == 1 {
        let mut acc = init();
        f(&mut acc, 0..items);
        return vec![acc];
    }
    let mut accs: Vec<T> = (0..threads).map(|_| init()).collect();
    {
        let slots: Vec<std::sync::Mutex<&mut T>> =
            accs.iter_mut().map(std::sync::Mutex::new).collect();
        let next = AtomicUsize::new(0);
        for_each_chunk(threads, items, min_chunk, |chunk| {
            // Each worker processes many chunks; grabbing the first free
            // slot per chunk keeps accumulators exclusive without tying
            // them to worker identity. Contention is rare (slot count ==
            // worker count) and the merge is partition-independent anyway.
            let start = next.fetch_add(1, Ordering::Relaxed);
            loop {
                for off in 0..slots.len() {
                    if let Ok(mut guard) = slots[(start + off) % slots.len()].try_lock() {
                        f(&mut guard, chunk);
                        return;
                    }
                }
                std::thread::yield_now();
            }
        });
    }
    accs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn coverage(threads: usize, items: usize, min_chunk: usize) {
        let hits: Vec<AtomicU32> = (0..items).map(|_| AtomicU32::new(0)).collect();
        for_each_chunk(threads, items, min_chunk, |chunk| {
            assert!(!chunk.is_empty(), "empty chunk handed out");
            assert!(chunk.end <= items, "chunk out of bounds");
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "index {i} covered {} times",
                h.load(Ordering::Relaxed)
            );
        }
    }

    #[test]
    fn covers_every_index_exactly_once() {
        for threads in [1, 2, 3, 4, 8] {
            for items in [0, 1, 2, 3, 7, 64, 1000, 4097] {
                for min_chunk in [1, 3, 16, 1024] {
                    coverage(threads, items, min_chunk);
                }
            }
        }
    }

    #[test]
    fn disjoint_slot_writes_are_deterministic() {
        let n = 2000;
        let mut out = vec![0u64; n];
        {
            let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            for_each_chunk(5, n, 4, |chunk| {
                for i in chunk {
                    slots[i].store((i as u64) * 3 + 1, Ordering::Relaxed);
                }
            });
            for (o, s) in out.iter_mut().zip(&slots) {
                *o = s.load(Ordering::Relaxed);
            }
        }
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * 3 + 1);
        }
    }

    #[test]
    fn skewed_workloads_complete() {
        // Front-loaded costs force stealing: the first indices spin.
        let items = 800;
        let done = AtomicUsize::new(0);
        for_each_chunk(4, items, 1, |chunk| {
            for i in chunk {
                if i < 8 {
                    for _ in 0..50_000 {
                        std::hint::black_box(i);
                    }
                }
                done.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), items);
    }

    #[test]
    fn serial_path_runs_inline() {
        let mut called = 0;
        let calls = AtomicUsize::new(0);
        for_each_chunk(1, 10, 1, |chunk| {
            assert_eq!(chunk, 0..10);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        called += calls.load(Ordering::Relaxed);
        assert_eq!(called, 1);
    }

    #[test]
    fn map_parts_reduces_to_serial_fold() {
        for threads in [1, 2, 4] {
            let parts = map_parts(
                threads,
                1000,
                8,
                || 0u64,
                |acc, chunk| {
                    for i in chunk {
                        *acc += i as u64;
                    }
                },
            );
            let total: u64 = parts.into_iter().sum();
            assert_eq!(total, (0..1000u64).sum::<u64>(), "threads = {threads}");
        }
    }

    #[test]
    fn map_parts_empty_input() {
        let parts = map_parts(4, 0, 1, || 0u32, |_, _| panic!("no work expected"));
        assert!(parts.is_empty());
    }

    #[test]
    fn panics_propagate_without_hanging() {
        // A panic on any worker must unwind out of the scope (possibly
        // re-raised as "a scoped thread panicked") instead of leaving
        // sibling workers spinning on `remaining > 0` forever.
        let result = std::panic::catch_unwind(|| {
            for_each_chunk(4, 100, 1, |chunk| {
                if chunk.contains(&17) {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err(), "worker panic must propagate");
    }

    #[test]
    fn deque_pop_and_steal_are_disjoint() {
        let d = RangeDeque::new(0..100);
        let a = d.pop_front(10).unwrap();
        let b = d.steal_back().unwrap();
        let c = d.pop_front(10).unwrap();
        assert!(a.end <= b.start || b.end <= a.start);
        assert!(c.end <= b.start || b.end <= c.start);
        assert!(a.end <= c.start || c.end <= a.start);
    }

    #[test]
    fn adaptive_chunks_shrink_toward_the_tail() {
        let d = RangeDeque::new(0..1024);
        let first = d.pop_front(1).unwrap().len();
        let mut last = first;
        while let Some(c) = d.pop_front(1) {
            last = c.len();
        }
        assert!(first >= last, "chunks should not grow as the range drains");
        assert_eq!(last, 1, "the tail degrades to single items");
    }
}
