//! A persistent fixed-size worker pool for long-lived job execution.
//!
//! [`for_each_chunk`](crate::for_each_chunk) spawns scoped workers per
//! call, which is right for the compute stages but wrong for a daemon:
//! the `ftcd` server runs for hours and executes an open-ended stream of
//! analysis jobs, each of which *internally* fans out over
//! [`for_each_chunk`](crate::for_each_chunk). [`Pool`] is the outer
//! layer: `N` threads spawned once, a shared FIFO job queue, and a
//! drain-then-join shutdown so in-flight analyses finish before the
//! process exits.
//!
//! Jobs are type-erased `FnOnce` closures. A panicking job is caught
//! and dropped (the worker survives and its panic payload is discarded)
//! so one poisoned analysis cannot shrink the pool; callers that need
//! to observe failures should catch them inside the job and record the
//! outcome themselves, which is what the daemon's job table does.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<State>,
    available: Condvar,
}

/// A fixed set of worker threads draining a shared FIFO job queue.
///
/// Dropping the pool without calling [`Pool::shutdown`] still joins all
/// workers, draining any queued jobs first — shutdown is never abrupt.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers.len())
            .field("queued", &self.queued())
            .finish()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.available.wait(state).expect("pool state poisoned");
            }
        };
        // A panicking job must not kill the worker; the payload is
        // dropped here on purpose (see module docs).
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

impl Pool {
    /// Spawns a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool state poisoned")
            .jobs
            .len()
    }

    /// Enqueues a job. Returns `false` (dropping the job unrun) if the
    /// pool is already shutting down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        if state.shutting_down {
            return false;
        }
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.available.notify_one();
        true
    }

    /// Refuses new jobs, lets the workers drain everything already
    /// queued, and joins them. Returns once the queue is empty and all
    /// in-flight jobs have finished.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared
            .state
            .lock()
            .expect("pool state poisoned")
            .shutting_down = true;
        self.shared.available.notify_all();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn every_job_runs_once() {
        let pool = Pool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            assert!(pool.execute(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        // Two jobs meeting at a barrier only complete if two workers
        // run them at the same time.
        let pool = Pool::new(2);
        let barrier = Arc::new(Barrier::new(2));
        let met = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let (barrier, met) = (Arc::clone(&barrier), Arc::clone(&met));
            pool.execute(move || {
                barrier.wait();
                met.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(met.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        // One worker, one slow job, many queued behind it: shutdown
        // must wait for all of them.
        let pool = Pool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(30));
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = Pool::new(1);
        pool.execute(|| panic!("poisoned job"));
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(
            done.load(Ordering::Relaxed),
            1,
            "worker died with the panic"
        );
    }

    #[test]
    fn drop_joins_without_explicit_shutdown() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = Pool::new(2);
            for _ in 0..8 {
                let done = Arc::clone(&done);
                pool.execute(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }
}
