//! Auto Unlock (AU) generator and dissector.
//!
//! AU is Apple's proprietary distance-bounding protocol between Apple
//! Watch and Mac; neither traces nor a specification are public (the
//! paper used a private Wireshark dissector). We model the documented
//! behaviour: short ranging request/response exchanges followed by a
//! report carrying a long sequence of 32-bit measurement results — the
//! field the paper singles out because individual measurements "look
//! static in some instances and random in others" (§IV-C). Measurements
//! are encoded big-endian, so their high bytes are near-constant while the
//! low bytes vary with measurement noise.

use crate::gen::GenCtx;
use crate::{DissectError, FieldKind, TrueField};
use bytes::Bytes;
use rand::Rng;
use trace::{Direction, Endpoint, Message, Trace, Transport};

const MAGIC: [u8; 2] = [0x41, 0x55]; // "AU"
const MSG_RANGING_REQUEST: u8 = 1;
const MSG_RANGING_RESPONSE: u8 = 2;
const MSG_REPORT: u8 = 3;

/// Generates an AU trace: request → response → report cycles within
/// ranging sessions between a watch and a host.
pub fn generate(n: usize, seed: u64) -> Trace {
    let mut ctx = GenCtx::new(seed ^ 0x4155_4155, 4);
    let mut messages = Vec::with_capacity(n);
    let mut session_id: u32 = 0;
    let mut sequence: u16 = 0;
    let mut base_distance: u32 = 0;
    let mut pending_nonce = [0u8; 8];
    let watch = Endpoint::mac([0x02, 0xA5, 0x00, 0x00, 0x00, 0x01]);
    let mac_host = Endpoint::mac([0x02, 0xA5, 0x00, 0x00, 0x00, 0x02]);

    for i in 0..n {
        let ts = ctx.tick();
        // A ranging session is one request, one response, then a burst
        // of four measurement reports: reports dominate the trace, as
        // they do in real captures.
        let phase = match i % 6 {
            0 => 0,
            1 => 1,
            _ => 2,
        };
        if phase == 0 {
            session_id = ctx.rng().gen();
            sequence = 0;
            // Distance in tenths of millimetres; varies per session.
            base_distance = ctx.rng().gen_range(8_000..60_000);
        }
        sequence = sequence.wrapping_add(1);

        let mut buf = Vec::with_capacity(96);
        buf.extend_from_slice(&MAGIC);
        buf.push(1); // version
        buf.push([MSG_RANGING_REQUEST, MSG_RANGING_RESPONSE, MSG_REPORT][phase]);
        buf.extend_from_slice(&session_id.to_be_bytes());
        buf.extend_from_slice(&sequence.to_be_bytes());
        buf.extend_from_slice(&0x0003u16.to_be_bytes()); // flags
        let micros = ctx.now_micros();
        buf.extend_from_slice(&micros.to_be_bytes()); // timestamp

        match phase {
            0 => {
                ctx.fill_random(&mut pending_nonce);
                buf.extend_from_slice(&pending_nonce);
            }
            1 => {
                let mut nonce = [0u8; 8];
                ctx.fill_random(&mut nonce);
                buf.extend_from_slice(&nonce);
                buf.extend_from_slice(&pending_nonce); // echo
            }
            _ => {
                // Long sequences of 32-bit measurement results (§IV-C of
                // the paper: "long sequences of 32-bit integers") — a few
                // hundred samples per report.
                let count: u16 = ctx.rng().gen_range(300..=420);
                buf.extend_from_slice(&count.to_be_bytes());
                for _ in 0..count {
                    // Mostly base + noise; sometimes invalid (0) or
                    // saturated (0xFFFFFFFF) samples.
                    let roll = ctx.rng().gen_range(0..20u8);
                    let sample: u32 = match roll {
                        0 => 0,
                        1 => u32::MAX,
                        _ => base_distance.saturating_add(ctx.rng().gen_range(0..2_000)),
                    };
                    buf.extend_from_slice(&sample.to_be_bytes());
                }
            }
        }
        let mut tag = [0u8; 8];
        ctx.fill_random(&mut tag);
        buf.extend_from_slice(&tag);

        let (src, dst, dir) = match phase {
            0 => (mac_host, watch, Direction::Request),
            1 => (watch, mac_host, Direction::Response),
            _ => (watch, mac_host, Direction::Unknown),
        };
        messages.push(
            Message::builder(Bytes::from(buf))
                .timestamp_micros(ts)
                .source(src)
                .destination(dst)
                .transport(Transport::Link)
                .direction(dir)
                .build(),
        );
    }
    Trace::new("au", messages)
}

/// The ground-truth message type.
///
/// # Errors
///
/// Fails like [`dissect`] on malformed payloads.
pub fn message_type(payload: &[u8]) -> Result<&'static str, DissectError> {
    dissect(payload)?;
    Ok(match payload[3] {
        MSG_RANGING_REQUEST => "au ranging request",
        MSG_RANGING_RESPONSE => "au ranging response",
        _ => "au report",
    })
}

/// Dissects an AU message into ground-truth fields.
///
/// # Errors
///
/// Fails on bad magic, unknown message types, or lengths inconsistent
/// with the message type's layout.
pub fn dissect(payload: &[u8]) -> Result<Vec<TrueField>, DissectError> {
    let err = |context, offset| DissectError {
        protocol: "au",
        context,
        offset,
    };
    if payload.len() < 20 {
        return Err(err("common header", payload.len()));
    }
    if payload[0..2] != MAGIC {
        return Err(err("magic 'AU'", 0));
    }
    let msg_type = payload[3];
    let mut fields = vec![
        TrueField {
            offset: 0,
            len: 2,
            kind: FieldKind::Enum,
            name: "magic",
        },
        TrueField {
            offset: 2,
            len: 1,
            kind: FieldKind::UInt,
            name: "version",
        },
        TrueField {
            offset: 3,
            len: 1,
            kind: FieldKind::Enum,
            name: "msg_type",
        },
        TrueField {
            offset: 4,
            len: 4,
            kind: FieldKind::Id,
            name: "session_id",
        },
        TrueField {
            offset: 8,
            len: 2,
            kind: FieldKind::UInt,
            name: "sequence",
        },
        TrueField {
            offset: 10,
            len: 2,
            kind: FieldKind::Flags,
            name: "flags",
        },
        TrueField {
            offset: 12,
            len: 8,
            kind: FieldKind::Timestamp,
            name: "timestamp",
        },
    ];
    let mut pos = 20;
    match msg_type {
        MSG_RANGING_REQUEST => {
            if payload.len() != pos + 8 + 8 {
                return Err(err("request layout", pos));
            }
            fields.push(TrueField {
                offset: pos,
                len: 8,
                kind: FieldKind::Bytes,
                name: "nonce",
            });
            pos += 8;
        }
        MSG_RANGING_RESPONSE => {
            if payload.len() != pos + 16 + 8 {
                return Err(err("response layout", pos));
            }
            fields.push(TrueField {
                offset: pos,
                len: 8,
                kind: FieldKind::Bytes,
                name: "nonce",
            });
            fields.push(TrueField {
                offset: pos + 8,
                len: 8,
                kind: FieldKind::Bytes,
                name: "echo_nonce",
            });
            pos += 16;
        }
        MSG_REPORT => {
            if pos + 2 > payload.len() {
                return Err(err("measurement count", pos));
            }
            let count = usize::from(u16::from_be_bytes([payload[pos], payload[pos + 1]]));
            fields.push(TrueField {
                offset: pos,
                len: 2,
                kind: FieldKind::UInt,
                name: "count",
            });
            pos += 2;
            if payload.len() != pos + 4 * count + 8 {
                return Err(err("report layout", pos));
            }
            for _ in 0..count {
                fields.push(TrueField {
                    offset: pos,
                    len: 4,
                    kind: FieldKind::Measurement,
                    name: "measurement",
                });
                pos += 4;
            }
        }
        _ => return Err(err("message type 1-3", 3)),
    }
    fields.push(TrueField {
        offset: pos,
        len: 8,
        kind: FieldKind::Bytes,
        name: "auth_tag",
    });
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields_tile_payload;

    #[test]
    fn all_messages_dissect_and_tile() {
        let t = generate(123, 61);
        for (i, m) in t.iter().enumerate() {
            let fields = dissect(m.payload()).unwrap_or_else(|e| panic!("msg {i}: {e}"));
            assert!(fields_tile_payload(&fields, m.payload().len()), "msg {i}");
        }
    }

    #[test]
    fn responses_echo_request_nonce() {
        let t = generate(6, 1);
        let msgs = t.messages();
        assert_eq!(&msgs[0].payload()[20..28], &msgs[1].payload()[28..36]);
    }

    #[test]
    fn reports_carry_measurements() {
        let t = generate(3, 2);
        let report = &t.messages()[2];
        let fields = dissect(report.payload()).unwrap();
        let n = fields
            .iter()
            .filter(|f| f.kind == FieldKind::Measurement)
            .count();
        assert!((300..=420).contains(&n));
        // Most measurements share their high byte (static prefix).
        let highs: Vec<u8> = fields
            .iter()
            .filter(|f| f.kind == FieldKind::Measurement)
            .map(|f| report.payload()[f.offset])
            .collect();
        let zero_highs = highs.iter().filter(|&&b| b == 0).count();
        assert!(
            zero_highs * 2 >= highs.len(),
            "high bytes mostly zero: {highs:?}"
        );
    }

    #[test]
    fn sequence_increments_within_session() {
        let t = generate(8, 3);
        let seq = |m: &trace::Message| u16::from_be_bytes([m.payload()[8], m.payload()[9]]);
        let msgs = t.messages();
        for (i, m) in msgs.iter().take(6).enumerate() {
            assert_eq!(seq(m), i as u16 + 1);
        }
        assert_eq!(seq(&msgs[6]), 1); // next session restarts
    }

    #[test]
    fn rejects_malformed() {
        assert!(dissect(&[0u8; 10]).is_err());
        let t = generate(1, 4);
        let mut p = t.messages()[0].payload().to_vec();
        p[0] = 0;
        assert!(dissect(&p).is_err());
        let mut q = t.messages()[0].payload().to_vec();
        q[3] = 9; // unknown type
        assert!(dissect(&q).is_err());
        let mut r = t.messages()[0].payload().to_vec();
        r.push(0);
        assert!(dissect(&r).is_err());
    }
}
