//! Apple Wireless Direct Link generator and dissector: vendor-specific
//! action frames with a TLV record body, per the public reverse-engineered
//! specification (Stute et al., MobiCom 2018).
//!
//! AWDL is a link-layer protocol without IP encapsulation; messages carry
//! MAC endpoints only — the case where context-dependent baselines like
//! FieldHunter cannot operate (paper §V).

use crate::gen::GenCtx;
use crate::{DissectError, FieldKind, TrueField};
use bytes::Bytes;
use rand::Rng;
use trace::{Direction, Endpoint, Message, Trace, Transport};

const CATEGORY_VENDOR: u8 = 0x7F;
const APPLE_OUI: [u8; 3] = [0x00, 0x17, 0xF2];
const AWDL_TYPE: u8 = 0x08;
const AWDL_VERSION: u8 = 0x10;

const SUBTYPE_PSF: u8 = 0x00;
const SUBTYPE_MIF: u8 = 0x03;

const TLV_SERVICE_RESPONSE: u8 = 0x02;
const TLV_SYNC_PARAMS: u8 = 0x04;
const TLV_ELECTION_PARAMS: u8 = 0x05;
const TLV_SERVICE_PARAMS: u8 = 0x06;
const TLV_HT_CAPS: u8 = 0x07;
const TLV_DATA_PATH_STATE: u8 = 0x0C;
const TLV_ARPA: u8 = 0x10;
const TLV_CHANNEL_SEQ: u8 = 0x12;
const TLV_VERSION: u8 = 0x15;

const SERVICES: [&str; 4] = [
    "_airdrop._tcp.local",
    "_airplay._tcp.local",
    "_companion-link._tcp.local",
    "_rdlink._tcp.local",
];

/// Generates an AWDL trace: periodic synchronization frames (PSF) and
/// master indication frames (MIF) from a small mesh of peers.
pub fn generate(n: usize, seed: u64) -> Trace {
    let mut ctx = GenCtx::new(seed ^ 0x4157_444C, 6);
    let mut messages = Vec::with_capacity(n);
    let mut tx_counter: u16 = ctx.rng().gen();
    // Microsecond TSF-style clock for phy/target timestamps.
    let mut tsf: u32 = ctx.rng().gen_range(0x0100_0000..0x0200_0000);

    for i in 0..n {
        let ts = ctx.tick();
        let peer = ctx.pick_host();
        let master = ctx.pick_host();
        let is_mif = i % 3 == 2;
        tx_counter = tx_counter.wrapping_add(ctx.rng().gen_range(1..20));
        tsf = tsf.wrapping_add(ctx.rng().gen_range(10_000..600_000));

        let mut buf = Vec::with_capacity(160);
        buf.push(CATEGORY_VENDOR);
        buf.extend_from_slice(&APPLE_OUI);
        buf.push(AWDL_TYPE);
        buf.push(AWDL_VERSION);
        buf.push(if is_mif { SUBTYPE_MIF } else { SUBTYPE_PSF });
        buf.push(0); // reserved
        buf.extend_from_slice(&tsf.to_le_bytes()); // phy tx time
        buf.extend_from_slice(&tsf.wrapping_add(80).to_le_bytes()); // target tx time

        // Sync parameters TLV (22-byte fixed layout).
        let mut sync = Vec::with_capacity(22);
        sync.push(6); // tx channel
        sync.extend_from_slice(&tx_counter.to_le_bytes());
        sync.push(44); // master channel
        sync.push(0); // guard time
        sync.extend_from_slice(&16u16.to_le_bytes()); // aw period
        sync.extend_from_slice(&110u16.to_le_bytes()); // af period
        sync.extend_from_slice(&0x1800u16.to_le_bytes()); // flags
        sync.extend_from_slice(&16u16.to_le_bytes()); // aw ext len
        sync.extend_from_slice(&16u16.to_le_bytes()); // aw common len
        sync.extend_from_slice(&ctx.host_mac(master)); // master addr
        sync.push(4); // presence mode
        push_tlv(&mut buf, TLV_SYNC_PARAMS, &sync);

        // Election parameters TLV (19-byte fixed layout).
        let mut elect = Vec::with_capacity(19);
        elect.push(0); // flags
        elect.extend_from_slice(&0u16.to_le_bytes()); // id
        elect.push(ctx.rng().gen_range(0..3)); // distance to master
        elect.push(0); // unused
        elect.extend_from_slice(&ctx.host_mac(master));
        let master_metric: u32 = ctx.rng().gen_range(200..600);
        elect.extend_from_slice(&master_metric.to_le_bytes());
        let self_metric: u32 = ctx.rng().gen_range(60..600);
        elect.extend_from_slice(&self_metric.to_le_bytes());
        push_tlv(&mut buf, TLV_ELECTION_PARAMS, &elect);

        // Channel sequence TLV: 6-byte fixed head + 2 bytes per channel.
        let n_channels = 16u8;
        let mut chanseq = Vec::with_capacity(6 + 2 * (n_channels as usize));
        chanseq.push(n_channels - 1); // count - 1
        chanseq.push(3); // encoding: legacy + band
        chanseq.push(0); // duplicate
        chanseq.push(0); // step
        chanseq.extend_from_slice(&0xFFFFu16.to_le_bytes()); // fill
        for slot in 0..n_channels {
            let ch = if slot % 4 == 0 { 6 } else { 44 };
            chanseq.push(ch);
            chanseq.push(if ch == 6 { 0x51 } else { 0x80 });
        }
        push_tlv(&mut buf, TLV_CHANNEL_SEQ, &chanseq);

        // Version TLV.
        push_tlv(&mut buf, TLV_VERSION, &[ctx.rng().gen_range(0x20..0x40), 2]);

        // HT capabilities TLV (6-byte fixed layout, device-constant).
        let mut ht = Vec::with_capacity(6);
        ht.extend_from_slice(&0x01ADu16.to_le_bytes()); // ht flags
        ht.push(0x17); // a-mpdu parameters
        ht.extend_from_slice(&[0xFF, 0xFF, 0x00]); // rx mcs set
        push_tlv(&mut buf, TLV_HT_CAPS, &ht);

        // Service parameters TLV: sui counter + encoded bloom filter.
        let mut sp = Vec::with_capacity(8);
        sp.extend_from_slice(&tx_counter.to_le_bytes()); // sui
        let bloom_len = ctx.rng().gen_range(2..6usize);
        sp.push(bloom_len as u8);
        for _ in 0..bloom_len {
            sp.push(ctx.rng().gen());
        }
        push_tlv(&mut buf, TLV_SERVICE_PARAMS, &sp);

        if is_mif {
            // Service response TLV: length-prefixed Bonjour service name.
            let service = SERVICES[ctx.rng().gen_range(0..SERVICES.len())];
            let mut sr = Vec::with_capacity(2 + service.len());
            sr.push(service.len() as u8);
            sr.extend_from_slice(service.as_bytes());
            sr.push(ctx.rng().gen_range(1..4)); // record type
            push_tlv(&mut buf, TLV_SERVICE_RESPONSE, &sr);
        }

        if is_mif {
            // Data path state TLV (13-byte fixed layout).
            let mut dps = Vec::with_capacity(13);
            dps.extend_from_slice(&0x03E4u16.to_le_bytes()); // flags
            dps.extend_from_slice(b"DE\0"); // country code
            dps.extend_from_slice(&ctx.host_mac(peer)); // infra addr
            dps.extend_from_slice(&0x0001u16.to_le_bytes()); // extended flags
            push_tlv(&mut buf, TLV_DATA_PATH_STATE, &dps);

            // Arpa (hostname) TLV: flags + length-prefixed name.
            let name = format!("{}-macbook", ctx.hostname(peer));
            let mut arpa = Vec::with_capacity(2 + name.len());
            arpa.push(0x03);
            arpa.push(name.len() as u8);
            arpa.extend_from_slice(name.as_bytes());
            push_tlv(&mut buf, TLV_ARPA, &arpa);
        }

        messages.push(
            Message::builder(Bytes::from(buf))
                .timestamp_micros(ts)
                .source(Endpoint::mac(ctx.host_mac(peer)))
                .destination(Endpoint::mac([0xFF; 6])) // broadcast
                .transport(Transport::Link)
                .direction(Direction::Unknown)
                .build(),
        );
    }
    Trace::new("awdl", messages)
}

fn push_tlv(buf: &mut Vec<u8>, tlv_type: u8, value: &[u8]) {
    buf.push(tlv_type);
    buf.extend_from_slice(&(value.len() as u16).to_le_bytes());
    buf.extend_from_slice(value);
}

struct FieldSink {
    fields: Vec<TrueField>,
    pos: usize,
}

impl FieldSink {
    fn push(&mut self, len: usize, kind: FieldKind, name: &'static str) {
        self.fields.push(TrueField {
            offset: self.pos,
            len,
            kind,
            name,
        });
        self.pos += len;
    }
}

/// The ground-truth message type: the AWDL subtype.
///
/// # Errors
///
/// Fails like [`dissect`] on malformed payloads.
pub fn message_type(payload: &[u8]) -> Result<&'static str, DissectError> {
    dissect(payload)?;
    Ok(match payload[6] {
        SUBTYPE_PSF => "awdl psf",
        SUBTYPE_MIF => "awdl mif",
        _ => "awdl other",
    })
}

/// Dissects an AWDL action frame into ground-truth fields.
///
/// # Errors
///
/// Fails on non-AWDL frames, truncated TLVs, or TLV bodies inconsistent
/// with their type's fixed layout.
pub fn dissect(payload: &[u8]) -> Result<Vec<TrueField>, DissectError> {
    let err = |context, offset| DissectError {
        protocol: "awdl",
        context,
        offset,
    };
    if payload.len() < 16 {
        return Err(err("action frame header", payload.len()));
    }
    if payload[0] != CATEGORY_VENDOR || payload[1..4] != APPLE_OUI || payload[4] != AWDL_TYPE {
        return Err(err("AWDL vendor header", 0));
    }
    let mut sink = FieldSink {
        fields: Vec::with_capacity(48),
        pos: 0,
    };
    sink.push(1, FieldKind::Enum, "category");
    sink.push(3, FieldKind::Enum, "oui");
    sink.push(1, FieldKind::Enum, "awdl_type");
    sink.push(1, FieldKind::UInt, "version");
    sink.push(1, FieldKind::Enum, "subtype");
    sink.push(1, FieldKind::Padding, "reserved");
    sink.push(4, FieldKind::Timestamp, "phy_tx_time");
    sink.push(4, FieldKind::Timestamp, "target_tx_time");

    while sink.pos < payload.len() {
        let tlv_start = sink.pos;
        if tlv_start + 3 > payload.len() {
            return Err(err("TLV header", tlv_start));
        }
        let tlv_type = payload[tlv_start];
        let tlv_len = usize::from(u16::from_le_bytes([
            payload[tlv_start + 1],
            payload[tlv_start + 2],
        ]));
        let body_start = tlv_start + 3;
        let body_end = body_start + tlv_len;
        if body_end > payload.len() {
            return Err(err("TLV body", body_start));
        }
        sink.push(1, FieldKind::Enum, "tlv_type");
        sink.push(2, FieldKind::UInt, "tlv_length");
        match tlv_type {
            TLV_SYNC_PARAMS if tlv_len == 22 => {
                sink.push(1, FieldKind::UInt, "tx_channel");
                sink.push(2, FieldKind::UInt, "tx_counter");
                sink.push(1, FieldKind::UInt, "master_channel");
                sink.push(1, FieldKind::UInt, "guard_time");
                sink.push(2, FieldKind::UInt, "aw_period");
                sink.push(2, FieldKind::UInt, "af_period");
                sink.push(2, FieldKind::Flags, "awdl_flags");
                sink.push(2, FieldKind::UInt, "aw_ext_len");
                sink.push(2, FieldKind::UInt, "aw_common_len");
                sink.push(6, FieldKind::MacAddr, "master_addr");
                sink.push(1, FieldKind::UInt, "presence_mode");
            }
            TLV_HT_CAPS if tlv_len == 6 => {
                sink.push(2, FieldKind::Flags, "ht_flags");
                sink.push(1, FieldKind::UInt, "ampdu_params");
                sink.push(3, FieldKind::Bytes, "rx_mcs_set");
            }
            TLV_SERVICE_PARAMS if tlv_len >= 3 => {
                sink.push(2, FieldKind::UInt, "sui");
                sink.push(1, FieldKind::UInt, "bloom_len");
                let bloom = tlv_len - 3;
                if usize::from(payload[body_start + 2]) != bloom {
                    return Err(err("service params bloom length", body_start + 2));
                }
                if bloom > 0 {
                    sink.push(bloom, FieldKind::Bytes, "bloom_filter");
                }
            }
            TLV_SERVICE_RESPONSE if tlv_len >= 2 => {
                sink.push(1, FieldKind::UInt, "service_len");
                let name_len = usize::from(payload[body_start]);
                if name_len + 2 != tlv_len {
                    return Err(err("service response length", body_start));
                }
                if name_len > 0 {
                    sink.push(name_len, FieldKind::Chars, "service_name");
                }
                sink.push(1, FieldKind::Enum, "record_type");
            }
            TLV_ELECTION_PARAMS if tlv_len == 19 => {
                sink.push(1, FieldKind::Flags, "election_flags");
                sink.push(2, FieldKind::UInt, "election_id");
                sink.push(1, FieldKind::UInt, "distance_to_master");
                sink.push(1, FieldKind::Padding, "unused");
                sink.push(6, FieldKind::MacAddr, "master_addr");
                sink.push(4, FieldKind::UInt, "master_metric");
                sink.push(4, FieldKind::UInt, "self_metric");
            }
            TLV_CHANNEL_SEQ if tlv_len >= 6 => {
                sink.push(1, FieldKind::UInt, "channel_count");
                sink.push(1, FieldKind::Enum, "channel_encoding");
                sink.push(1, FieldKind::UInt, "duplicate");
                sink.push(1, FieldKind::UInt, "step");
                sink.push(2, FieldKind::Padding, "fill");
                let list_len = tlv_len - 6;
                if list_len > 0 {
                    sink.push(list_len, FieldKind::Bytes, "channel_list");
                }
            }
            TLV_DATA_PATH_STATE if tlv_len == 13 => {
                sink.push(2, FieldKind::Flags, "dps_flags");
                sink.push(3, FieldKind::Chars, "country_code");
                sink.push(6, FieldKind::MacAddr, "infra_addr");
                sink.push(2, FieldKind::UInt, "dps_ext_flags");
            }
            TLV_ARPA if tlv_len >= 2 => {
                sink.push(1, FieldKind::Flags, "arpa_flags");
                sink.push(1, FieldKind::UInt, "arpa_len");
                let name_len = tlv_len - 2;
                if usize::from(payload[body_start + 1]) != name_len {
                    return Err(err("arpa length byte", body_start + 1));
                }
                if name_len > 0 {
                    sink.push(name_len, FieldKind::Chars, "arpa_name");
                }
            }
            TLV_VERSION if tlv_len == 2 => {
                sink.push(1, FieldKind::UInt, "awdl_version");
                sink.push(1, FieldKind::Enum, "device_class");
            }
            _ => {
                if tlv_len > 0 {
                    sink.push(tlv_len, FieldKind::Bytes, "tlv_value");
                }
            }
        }
        if sink.pos != body_end {
            return Err(err("TLV layout consumes body", tlv_start));
        }
    }
    Ok(sink.fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields_tile_payload;

    #[test]
    fn all_messages_dissect_and_tile() {
        let t = generate(150, 51);
        for (i, m) in t.iter().enumerate() {
            let fields = dissect(m.payload()).unwrap_or_else(|e| panic!("msg {i}: {e}"));
            assert!(fields_tile_payload(&fields, m.payload().len()), "msg {i}");
        }
    }

    #[test]
    fn mif_frames_carry_hostname() {
        let t = generate(9, 1);
        let mif = &t.messages()[2];
        let fields = dissect(mif.payload()).unwrap();
        let arpa = fields.iter().find(|f| f.name == "arpa_name").unwrap();
        let name = &mif.payload()[arpa.range()];
        assert!(name.ends_with(b"-macbook"));
    }

    #[test]
    fn psf_frames_have_no_data_path() {
        let t = generate(9, 2);
        let psf = &t.messages()[0];
        let fields = dissect(psf.payload()).unwrap();
        assert!(!fields.iter().any(|f| f.name == "dps_flags"));
        assert!(fields.iter().any(|f| f.name == "master_addr"));
        assert!(fields.iter().any(|f| f.name == "bloom_filter"));
    }

    #[test]
    fn mif_frames_advertise_services() {
        let t = generate(9, 6);
        let mif = &t.messages()[2];
        let fields = dissect(mif.payload()).unwrap();
        let svc = fields.iter().find(|f| f.name == "service_name").unwrap();
        let name = &mif.payload()[svc.range()];
        assert!(
            name.ends_with(b"._tcp.local"),
            "{:?}",
            String::from_utf8_lossy(name)
        );
    }

    #[test]
    fn endpoints_are_link_layer() {
        let t = generate(3, 3);
        for m in &t {
            assert_eq!(m.transport(), Transport::Link);
            assert_eq!(m.source().port, None);
        }
    }

    #[test]
    fn tx_times_advance() {
        let t = generate(10, 4);
        let times: Vec<u32> = t
            .iter()
            .map(|m| u32::from_le_bytes(m.payload()[8..12].try_into().unwrap()))
            .collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn rejects_foreign_frames() {
        assert!(dissect(&[0u8; 20]).is_err());
        let t = generate(1, 5);
        let mut p = t.messages()[0].payload().to_vec();
        p[1] = 0xAA; // break OUI
        assert!(dissect(&p).is_err());
        let mut q = t.messages()[0].payload().to_vec();
        q.truncate(q.len() - 1); // truncate last TLV
        assert!(dissect(&q).is_err());
    }
}
