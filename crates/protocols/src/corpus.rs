//! The paper's evaluation corpus: canonical traces per protocol and size.
//!
//! Table I and Table II evaluate traces truncated to 1000 and 100
//! messages per protocol — except AWDL (768 messages available) and AU
//! (123 messages, only in the small set). This module reproduces those
//! trace specifications over our synthetic generators, applying the
//! paper's §III-A preprocessing (payload de-duplication, truncation).

use crate::{Protocol, ProtocolSpec, TrueField};
use trace::{Preprocessor, Trace};

/// Default seed for the canonical corpus; all paper-reproduction binaries
/// use this value so their outputs are directly comparable.
pub const DEFAULT_SEED: u64 = 0xD5E5_2022;

/// One row of the evaluation corpus: a protocol at a target trace size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Protocol to generate.
    pub protocol: Protocol,
    /// Number of messages after preprocessing.
    pub messages: usize,
    /// Generation seed.
    pub seed: u64,
}

impl CorpusSpec {
    /// Creates a spec with the canonical seed.
    pub fn new(protocol: Protocol, messages: usize) -> Self {
        Self {
            protocol,
            messages,
            seed: DEFAULT_SEED,
        }
    }

    /// Builds the trace: generate with head-room, de-duplicate payloads,
    /// truncate to the target size.
    pub fn build(&self) -> Trace {
        build_trace(self.protocol, self.messages, self.seed)
    }
}

/// Builds a preprocessed trace of exactly `n` messages (or as many unique
/// messages as the generator can produce).
pub fn build_trace(protocol: Protocol, n: usize, seed: u64) -> Trace {
    // Generate with head-room so that dedup still leaves n messages.
    let mut factor = 2usize;
    loop {
        let raw = protocol.generate(n * factor, seed);
        let clean = Preprocessor::new()
            .deduplicate(true)
            .truncate(n)
            .apply(&raw);
        if clean.len() >= n || factor >= 8 {
            return clean;
        }
        factor *= 2;
    }
}

/// Ground truth for every message of a trace, from the protocol's
/// dissector.
///
/// # Panics
///
/// Panics if a message does not dissect — corpus traces are generated to
/// conform, so a failure indicates a generator/dissector bug.
pub fn ground_truth(protocol: Protocol, trace: &Trace) -> Vec<Vec<TrueField>> {
    trace
        .iter()
        .map(|m| {
            protocol
                .dissect(m.payload())
                .unwrap_or_else(|e| panic!("corpus message must dissect: {e}"))
        })
        .collect()
}

/// The large-trace specs of Tables I/II: 1000 messages per protocol, 768
/// for AWDL; AU has no large trace.
pub fn large_specs() -> Vec<CorpusSpec> {
    vec![
        CorpusSpec::new(Protocol::Dhcp, 1000),
        CorpusSpec::new(Protocol::Dns, 1000),
        CorpusSpec::new(Protocol::Nbns, 1000),
        CorpusSpec::new(Protocol::Ntp, 1000),
        CorpusSpec::new(Protocol::Smb, 1000),
        CorpusSpec::new(Protocol::Awdl, 768),
    ]
}

/// The small-trace specs of Tables I/II: 100 messages per protocol plus
/// AU's 123.
pub fn small_specs() -> Vec<CorpusSpec> {
    vec![
        CorpusSpec::new(Protocol::Dhcp, 100),
        CorpusSpec::new(Protocol::Dns, 100),
        CorpusSpec::new(Protocol::Nbns, 100),
        CorpusSpec::new(Protocol::Ntp, 100),
        CorpusSpec::new(Protocol::Smb, 100),
        CorpusSpec::new(Protocol::Awdl, 100),
        CorpusSpec::new(Protocol::Au, 123),
    ]
}

/// All specs in the paper's table order (large set, then small set).
pub fn paper_specs() -> Vec<CorpusSpec> {
    let mut all = large_specs();
    all.extend(small_specs());
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_sizes() {
        for spec in small_specs() {
            let t = spec.build();
            assert_eq!(t.len(), spec.messages, "{}", spec.protocol);
        }
    }

    #[test]
    fn traces_are_deduplicated() {
        let t = build_trace(Protocol::Ntp, 100, 1);
        let set: std::collections::HashSet<Vec<u8>> =
            t.iter().map(|m| m.payload().to_vec()).collect();
        assert_eq!(set.len(), t.len());
    }

    #[test]
    fn ground_truth_covers_every_message() {
        let t = build_trace(Protocol::Dns, 50, 2);
        let gt = ground_truth(Protocol::Dns, &t);
        assert_eq!(gt.len(), t.len());
        for (m, fields) in t.iter().zip(&gt) {
            assert!(crate::fields_tile_payload(fields, m.payload().len()));
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = build_trace(Protocol::Smb, 30, 3);
        let b = build_trace(Protocol::Smb, 30, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn paper_specs_cover_thirteen_rows() {
        assert_eq!(paper_specs().len(), 13);
    }
}
