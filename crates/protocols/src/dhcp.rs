//! DHCP generator and dissector (RFC 2131 over BOOTP, UDP 67/68):
//! DISCOVER/OFFER/REQUEST/ACK cycles with a realistic option mix and
//! BOOTP minimum-length padding.

use crate::gen::GenCtx;
use crate::{DissectError, FieldKind, TrueField};
use bytes::Bytes;
use rand::Rng;
use trace::{Direction, Endpoint, Message, Trace, Transport};

const SERVER_PORT: u16 = 67;
const CLIENT_PORT: u16 = 68;
const MAGIC_COOKIE: [u8; 4] = [0x63, 0x82, 0x53, 0x63];
/// BOOTP messages are commonly padded to this minimum size.
const MIN_LEN: usize = 300;

const OPT_SUBNET: u8 = 1;
const OPT_ROUTER: u8 = 3;
const OPT_DNS: u8 = 6;
const OPT_HOSTNAME: u8 = 12;
const OPT_REQUESTED_IP: u8 = 50;
const OPT_LEASE_TIME: u8 = 51;
const OPT_MSG_TYPE: u8 = 53;
const OPT_SERVER_ID: u8 = 54;
const OPT_PARAM_LIST: u8 = 55;
const OPT_RENEWAL: u8 = 58;
const OPT_END: u8 = 255;

/// Generates a DHCP trace: DISCOVER → OFFER → REQUEST → ACK cycles across
/// a host pool, padded to the BOOTP minimum length.
pub fn generate(n: usize, seed: u64) -> Trace {
    let mut ctx = GenCtx::new(seed ^ 0x4448_4350, 10);
    let server_ip = [10, 0, 0, 3];
    let mut messages = Vec::with_capacity(n);
    let mut cycle_host = 0usize;
    let mut cycle_xid: u32 = 0;
    let mut offered_ip = [0u8; 4];

    for i in 0..n {
        let ts = ctx.tick();
        let phase = i % 4; // 0 discover, 1 offer, 2 request, 3 ack
        if phase == 0 {
            cycle_host = ctx.pick_host();
            cycle_xid = ctx.rng().gen();
            offered_ip = [
                10,
                0,
                ctx.rng().gen_range(0..4u8),
                ctx.rng().gen_range(20..250u8),
            ];
        }
        let from_server = phase == 1 || phase == 3;
        let mac = ctx.host_mac(cycle_host);
        let secs: u16 = ctx.rng().gen_range(0..64);

        let mut buf = Vec::with_capacity(MIN_LEN);
        buf.push(if from_server { 2 } else { 1 }); // op
        buf.push(1); // htype: ethernet
        buf.push(6); // hlen
        buf.push(0); // hops
        buf.extend_from_slice(&cycle_xid.to_be_bytes());
        buf.extend_from_slice(&secs.to_be_bytes());
        buf.extend_from_slice(&if phase == 0 { 0x8000u16 } else { 0x0000u16 }.to_be_bytes()); // flags
        buf.extend_from_slice(&[0, 0, 0, 0]); // ciaddr
        buf.extend_from_slice(&if from_server {
            offered_ip
        } else {
            [0, 0, 0, 0]
        }); // yiaddr
        buf.extend_from_slice(&if from_server { server_ip } else { [0, 0, 0, 0] }); // siaddr
        buf.extend_from_slice(&[0, 0, 0, 0]); // giaddr
        buf.extend_from_slice(&mac); // chaddr: 6-byte MAC ...
        buf.extend_from_slice(&[0u8; 10]); // ... plus padding
                                           // sname: occasionally carries the server hostname.
        let mut sname = [0u8; 64];
        if from_server && ctx.rng().gen_bool(0.3) {
            let name = b"dhcp-core";
            sname[..name.len()].copy_from_slice(name);
        }
        buf.extend_from_slice(&sname);
        buf.extend_from_slice(&[0u8; 128]); // file
        buf.extend_from_slice(&MAGIC_COOKIE);

        // Options.
        let msg_type = [1u8, 2, 3, 5][phase];
        push_opt(&mut buf, OPT_MSG_TYPE, &[msg_type]);
        match phase {
            0 => {
                push_opt(
                    &mut buf,
                    OPT_HOSTNAME,
                    ctx.hostname(cycle_host).to_string().as_bytes(),
                );
                push_opt(&mut buf, OPT_PARAM_LIST, &[1, 3, 6, 15, 51, 58]);
            }
            2 => {
                push_opt(&mut buf, OPT_REQUESTED_IP, &offered_ip);
                push_opt(&mut buf, OPT_SERVER_ID, &server_ip);
                push_opt(
                    &mut buf,
                    OPT_HOSTNAME,
                    ctx.hostname(cycle_host).to_string().as_bytes(),
                );
            }
            _ => {
                push_opt(&mut buf, OPT_SERVER_ID, &server_ip);
                let lease: u32 = [3600u32, 7200, 86400][ctx.rng().gen_range(0..3usize)];
                push_opt(&mut buf, OPT_LEASE_TIME, &lease.to_be_bytes());
                push_opt(&mut buf, OPT_RENEWAL, &(lease / 2).to_be_bytes());
                push_opt(&mut buf, OPT_SUBNET, &[255, 255, 252, 0]);
                push_opt(&mut buf, OPT_ROUTER, &[10, 0, 0, 1]);
                push_opt(&mut buf, OPT_DNS, &[10, 0, 0, 2]);
            }
        }
        buf.push(OPT_END);
        if buf.len() < MIN_LEN {
            buf.resize(MIN_LEN, 0);
        }

        let client = Endpoint::udp(ctx.host_ip(cycle_host), CLIENT_PORT);
        let server = Endpoint::udp(server_ip, SERVER_PORT);
        let (src, dst, dir) = if from_server {
            (server, client, Direction::Response)
        } else {
            (client, server, Direction::Request)
        };
        messages.push(
            Message::builder(Bytes::from(buf))
                .timestamp_micros(ts)
                .source(src)
                .destination(dst)
                .transport(Transport::Udp)
                .direction(dir)
                .build(),
        );
    }
    Trace::new("dhcp", messages)
}

fn push_opt(buf: &mut Vec<u8>, code: u8, value: &[u8]) {
    buf.push(code);
    buf.push(value.len() as u8);
    buf.extend_from_slice(value);
}

fn option_value_kind(code: u8, len: usize) -> FieldKind {
    match code {
        OPT_SUBNET | OPT_ROUTER | OPT_REQUESTED_IP | OPT_SERVER_ID => FieldKind::Ipv4,
        OPT_DNS if len == 4 => FieldKind::Ipv4,
        OPT_HOSTNAME => FieldKind::Chars,
        OPT_LEASE_TIME | OPT_RENEWAL => FieldKind::UInt,
        OPT_MSG_TYPE => FieldKind::Enum,
        _ => FieldKind::Bytes,
    }
}

/// The ground-truth message type: the DHCP message type option (53).
///
/// # Errors
///
/// Fails like [`dissect`] on malformed payloads or when option 53 is
/// missing.
pub fn message_type(payload: &[u8]) -> Result<&'static str, DissectError> {
    let fields = dissect(payload)?;
    for f in &fields {
        if f.name == "option_code" && payload[f.offset] == OPT_MSG_TYPE {
            let value = *payload.get(f.offset + 2).ok_or(DissectError {
                protocol: "dhcp",
                context: "message type value",
                offset: f.offset + 2,
            })?;
            return Ok(match value {
                1 => "dhcp discover",
                2 => "dhcp offer",
                3 => "dhcp request",
                5 => "dhcp ack",
                6 => "dhcp nak",
                7 => "dhcp release",
                _ => "dhcp other",
            });
        }
    }
    Err(DissectError {
        protocol: "dhcp",
        context: "message type option",
        offset: payload.len(),
    })
}

/// Dissects a DHCP message into ground-truth fields.
///
/// # Errors
///
/// Fails on messages shorter than the fixed BOOTP header, a missing magic
/// cookie, or malformed options.
pub fn dissect(payload: &[u8]) -> Result<Vec<TrueField>, DissectError> {
    let err = |context, offset| DissectError {
        protocol: "dhcp",
        context,
        offset,
    };
    if payload.len() < 240 {
        return Err(err("240-byte BOOTP header", payload.len()));
    }
    if payload[236..240] != MAGIC_COOKIE {
        return Err(err("magic cookie", 236));
    }
    let mut fields = vec![
        TrueField {
            offset: 0,
            len: 1,
            kind: FieldKind::Enum,
            name: "op",
        },
        TrueField {
            offset: 1,
            len: 1,
            kind: FieldKind::Enum,
            name: "htype",
        },
        TrueField {
            offset: 2,
            len: 1,
            kind: FieldKind::UInt,
            name: "hlen",
        },
        TrueField {
            offset: 3,
            len: 1,
            kind: FieldKind::UInt,
            name: "hops",
        },
        TrueField {
            offset: 4,
            len: 4,
            kind: FieldKind::Id,
            name: "xid",
        },
        TrueField {
            offset: 8,
            len: 2,
            kind: FieldKind::UInt,
            name: "secs",
        },
        TrueField {
            offset: 10,
            len: 2,
            kind: FieldKind::Flags,
            name: "flags",
        },
        TrueField {
            offset: 12,
            len: 4,
            kind: FieldKind::Ipv4,
            name: "ciaddr",
        },
        TrueField {
            offset: 16,
            len: 4,
            kind: FieldKind::Ipv4,
            name: "yiaddr",
        },
        TrueField {
            offset: 20,
            len: 4,
            kind: FieldKind::Ipv4,
            name: "siaddr",
        },
        TrueField {
            offset: 24,
            len: 4,
            kind: FieldKind::Ipv4,
            name: "giaddr",
        },
        TrueField {
            offset: 28,
            len: 6,
            kind: FieldKind::MacAddr,
            name: "chaddr",
        },
        TrueField {
            offset: 34,
            len: 10,
            kind: FieldKind::Padding,
            name: "chaddr_pad",
        },
    ];
    // sname: leading printable characters followed by zero fill.
    let sname = &payload[44..108];
    let text_len = sname.iter().position(|&b| b == 0).unwrap_or(64);
    if text_len > 0 {
        fields.push(TrueField {
            offset: 44,
            len: text_len,
            kind: FieldKind::Chars,
            name: "sname",
        });
    }
    if text_len < 64 {
        fields.push(TrueField {
            offset: 44 + text_len,
            len: 64 - text_len,
            kind: FieldKind::Padding,
            name: "sname_pad",
        });
    }
    fields.push(TrueField {
        offset: 108,
        len: 128,
        kind: FieldKind::Padding,
        name: "file",
    });
    fields.push(TrueField {
        offset: 236,
        len: 4,
        kind: FieldKind::Enum,
        name: "magic_cookie",
    });

    let mut pos = 240;
    loop {
        let code = *payload.get(pos).ok_or_else(|| err("option code", pos))?;
        match code {
            0 => {
                // Pad options: collapse the run into one padding field.
                let start = pos;
                while pos < payload.len() && payload[pos] == 0 {
                    pos += 1;
                }
                fields.push(TrueField {
                    offset: start,
                    len: pos - start,
                    kind: FieldKind::Padding,
                    name: "pad",
                });
            }
            OPT_END => {
                fields.push(TrueField {
                    offset: pos,
                    len: 1,
                    kind: FieldKind::Enum,
                    name: "end",
                });
                pos += 1;
                if pos < payload.len() {
                    if payload[pos..].iter().any(|&b| b != 0) {
                        return Err(err("zero padding after end option", pos));
                    }
                    fields.push(TrueField {
                        offset: pos,
                        len: payload.len() - pos,
                        kind: FieldKind::Padding,
                        name: "trailer",
                    });
                }
                return Ok(fields);
            }
            _ => {
                let len = *payload
                    .get(pos + 1)
                    .ok_or_else(|| err("option length", pos + 1))?
                    as usize;
                if pos + 2 + len > payload.len() {
                    return Err(err("option value", pos + 2));
                }
                fields.push(TrueField {
                    offset: pos,
                    len: 1,
                    kind: FieldKind::Enum,
                    name: "option_code",
                });
                fields.push(TrueField {
                    offset: pos + 1,
                    len: 1,
                    kind: FieldKind::UInt,
                    name: "option_len",
                });
                if len > 0 {
                    fields.push(TrueField {
                        offset: pos + 2,
                        len,
                        kind: option_value_kind(code, len),
                        name: "option_value",
                    });
                }
                pos += 2 + len;
            }
        }
        if pos >= payload.len() {
            return Err(err("end option", pos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields_tile_payload;

    #[test]
    fn all_messages_dissect_and_tile() {
        let t = generate(200, 31);
        for m in &t {
            let fields = dissect(m.payload()).unwrap();
            assert!(
                fields_tile_payload(&fields, m.payload().len()),
                "fields do not tile: {fields:?}"
            );
        }
    }

    #[test]
    fn messages_meet_bootp_minimum() {
        let t = generate(20, 1);
        for m in &t {
            assert!(m.payload().len() >= MIN_LEN);
        }
    }

    #[test]
    fn cycle_shares_xid() {
        let t = generate(8, 2);
        let msgs = t.messages();
        for chunk in msgs.chunks(4) {
            let xid = &chunk[0].payload()[4..8];
            for m in chunk {
                assert_eq!(&m.payload()[4..8], xid);
            }
        }
    }

    #[test]
    fn offer_carries_yiaddr_and_lease() {
        let t = generate(4, 3);
        let offer = &t.messages()[1];
        assert_ne!(&offer.payload()[16..20], &[0, 0, 0, 0]);
        let fields = dissect(offer.payload()).unwrap();
        let uints: Vec<_> = fields
            .iter()
            .filter(|f| f.kind == FieldKind::UInt && f.len == 4)
            .collect();
        assert!(!uints.is_empty(), "lease time option present");
    }

    #[test]
    fn message_type_follows_cycle() {
        let t = generate(8, 4);
        let get_type = |m: &trace::Message| {
            let f = dissect(m.payload()).unwrap();
            let opt = f.iter().position(|x| x.name == "option_value").unwrap();
            m.payload()[f[opt].offset]
        };
        let types: Vec<u8> = t.iter().map(get_type).collect();
        assert_eq!(&types[..4], &[1, 2, 3, 5]);
    }

    #[test]
    fn rejects_bad_cookie_and_short() {
        assert!(dissect(&[0u8; 100]).is_err());
        let t = generate(1, 5);
        let mut p = t.messages()[0].payload().to_vec();
        p[237] = 0;
        assert!(dissect(&p).is_err());
    }

    #[test]
    fn rejects_missing_end_option() {
        let t = generate(1, 6);
        let mut p = t.messages()[0].payload().to_vec();
        // Overwrite the end option and trailing padding with pad options:
        // the walk then runs off the end.
        let end_pos = p.iter().rposition(|&b| b == OPT_END).unwrap();
        for b in &mut p[end_pos..] {
            *b = 0;
        }
        assert!(dissect(&p).is_err());
    }
}
