//! Domain Name System generator and dissector (RFC 1035, UDP queries and
//! responses with A/CNAME/TXT records and name compression).

use crate::gen::{encode_dns_name, GenCtx};
use crate::{DissectError, FieldKind, TrueField};
use bytes::Bytes;
use rand::Rng;
use trace::{Direction, Endpoint, Message, Trace, Transport};

const DNS_PORT: u16 = 53;

const TYPE_A: u16 = 1;
const TYPE_CNAME: u16 = 5;
const TYPE_TXT: u16 = 16;
const CLASS_IN: u16 = 1;

/// Generates a DNS trace of `n` messages: query/response pairs over a pool
/// of realistic domain names; responses carry 1–3 resource records.
pub fn generate(n: usize, seed: u64) -> Trace {
    let mut ctx = GenCtx::new(seed ^ 0x444E_5300, 8);
    let server_ip = [10, 0, 0, 2];
    let mut messages = Vec::with_capacity(n);
    let mut pending: Option<(usize, u16, String, u16)> = None; // host, id, name, qtype

    for i in 0..n {
        let ts = ctx.tick();
        let is_query = i % 2 == 0;
        let mut buf = Vec::with_capacity(96);

        if is_query {
            let host = ctx.pick_host();
            let id: u16 = ctx.rng().gen();
            let name = ctx.pick_domain();
            let qtype = match ctx.rng().gen_range(0..10u8) {
                0 => TYPE_TXT,
                1 | 2 => TYPE_CNAME,
                _ => TYPE_A,
            };
            buf.extend_from_slice(&id.to_be_bytes());
            buf.extend_from_slice(&0x0100u16.to_be_bytes()); // RD
            buf.extend_from_slice(&1u16.to_be_bytes()); // qdcount
            buf.extend_from_slice(&0u16.to_be_bytes());
            buf.extend_from_slice(&0u16.to_be_bytes());
            buf.extend_from_slice(&0u16.to_be_bytes());
            buf.extend_from_slice(&encode_dns_name(&name));
            buf.extend_from_slice(&qtype.to_be_bytes());
            buf.extend_from_slice(&CLASS_IN.to_be_bytes());
            pending = Some((host, id, name, qtype));

            let client = ctx.client_udp(host, true, DNS_PORT);
            messages.push(
                Message::builder(Bytes::from(buf))
                    .timestamp_micros(ts)
                    .source(client)
                    .destination(Endpoint::udp(server_ip, DNS_PORT))
                    .transport(Transport::Udp)
                    .direction(Direction::Request)
                    .build(),
            );
        } else {
            let (host, id, name, qtype) = pending.take().unwrap_or_else(|| {
                let h = ctx.pick_host();
                let id = ctx.rng().gen();
                let d = ctx.pick_domain();
                (h, id, d, TYPE_A)
            });
            let n_answers = ctx.rng().gen_range(1..=3u16);
            buf.extend_from_slice(&id.to_be_bytes());
            buf.extend_from_slice(&0x8180u16.to_be_bytes()); // QR RD RA
            buf.extend_from_slice(&1u16.to_be_bytes());
            buf.extend_from_slice(&n_answers.to_be_bytes());
            buf.extend_from_slice(&0u16.to_be_bytes());
            buf.extend_from_slice(&0u16.to_be_bytes());
            buf.extend_from_slice(&encode_dns_name(&name));
            buf.extend_from_slice(&qtype.to_be_bytes());
            buf.extend_from_slice(&CLASS_IN.to_be_bytes());
            for _ in 0..n_answers {
                buf.extend_from_slice(&0xC00Cu16.to_be_bytes()); // pointer to qname
                let rr_type = if qtype == TYPE_A { TYPE_A } else { qtype };
                buf.extend_from_slice(&rr_type.to_be_bytes());
                buf.extend_from_slice(&CLASS_IN.to_be_bytes());
                let ttl: u32 = [60u32, 300, 3600, 86400][ctx.rng().gen_range(0..4usize)];
                buf.extend_from_slice(&ttl.to_be_bytes());
                match rr_type {
                    TYPE_A => {
                        buf.extend_from_slice(&4u16.to_be_bytes());
                        let addr = [
                            93,
                            184,
                            ctx.rng().gen_range(0..32u8),
                            ctx.rng().gen_range(1..255u8),
                        ];
                        buf.extend_from_slice(&addr);
                    }
                    TYPE_CNAME => {
                        let target = encode_dns_name(&ctx.pick_domain());
                        buf.extend_from_slice(&(target.len() as u16).to_be_bytes());
                        buf.extend_from_slice(&target);
                    }
                    _ => {
                        // TXT: one character-string.
                        let txt =
                            format!("v=spf1 ip4:93.184.{}.0/24", ctx.rng().gen_range(0..32u8));
                        buf.extend_from_slice(&((txt.len() + 1) as u16).to_be_bytes());
                        buf.push(txt.len() as u8);
                        buf.extend_from_slice(txt.as_bytes());
                    }
                }
            }
            let client = ctx.client_udp(host, true, DNS_PORT);
            messages.push(
                Message::builder(Bytes::from(buf))
                    .timestamp_micros(ts)
                    .source(Endpoint::udp(server_ip, DNS_PORT))
                    .destination(client)
                    .transport(Transport::Udp)
                    .direction(Direction::Response)
                    .build(),
            );
        }
    }
    Trace::new("dns", messages)
}

/// Walks an encoded name starting at `at`; returns the byte length of the
/// encoding within this message (pointers terminate the walk with their
/// two bytes).
pub(crate) fn name_len(payload: &[u8], at: usize) -> Result<usize, DissectError> {
    let err = |context, offset| DissectError {
        protocol: "dns",
        context,
        offset,
    };
    let mut pos = at;
    loop {
        let len = *payload.get(pos).ok_or_else(|| err("name label", pos))? as usize;
        if len & 0xC0 == 0xC0 {
            // Compression pointer: two bytes, ends the name.
            if pos + 1 >= payload.len() {
                return Err(err("compression pointer", pos));
            }
            return Ok(pos + 2 - at);
        }
        if len == 0 {
            return Ok(pos + 1 - at);
        }
        if len >= 64 {
            return Err(err("label length < 64", pos));
        }
        pos += 1 + len;
        if pos > payload.len() {
            return Err(err("label data", pos));
        }
    }
}

/// The ground-truth message type: query vs response plus opcode.
///
/// # Errors
///
/// Fails like [`dissect`] on malformed payloads.
pub fn message_type(payload: &[u8]) -> Result<&'static str, DissectError> {
    dissect(payload)?;
    let qr = payload[2] & 0x80 != 0;
    Ok(if qr { "dns response" } else { "dns query" })
}

/// Dissects a DNS message into ground-truth fields.
///
/// # Errors
///
/// Fails on truncated headers, malformed names, or record counts that
/// exceed the message.
pub fn dissect(payload: &[u8]) -> Result<Vec<TrueField>, DissectError> {
    let err = |context, offset| DissectError {
        protocol: "dns",
        context,
        offset,
    };
    if payload.len() < 12 {
        return Err(err("12-byte header", payload.len()));
    }
    let rd16 = |at: usize| u16::from_be_bytes([payload[at], payload[at + 1]]);
    let qdcount = rd16(4) as usize;
    let ancount = rd16(6) as usize;
    let nscount = rd16(8) as usize;
    let arcount = rd16(10) as usize;

    let mut fields = vec![
        TrueField {
            offset: 0,
            len: 2,
            kind: FieldKind::Id,
            name: "id",
        },
        TrueField {
            offset: 2,
            len: 2,
            kind: FieldKind::Flags,
            name: "flags",
        },
        TrueField {
            offset: 4,
            len: 2,
            kind: FieldKind::UInt,
            name: "qdcount",
        },
        TrueField {
            offset: 6,
            len: 2,
            kind: FieldKind::UInt,
            name: "ancount",
        },
        TrueField {
            offset: 8,
            len: 2,
            kind: FieldKind::UInt,
            name: "nscount",
        },
        TrueField {
            offset: 10,
            len: 2,
            kind: FieldKind::UInt,
            name: "arcount",
        },
    ];
    let mut pos = 12;
    for _ in 0..qdcount {
        let nl = name_len(payload, pos)?;
        fields.push(TrueField {
            offset: pos,
            len: nl,
            kind: FieldKind::DomainName,
            name: "qname",
        });
        pos += nl;
        if pos + 4 > payload.len() {
            return Err(err("qtype/qclass", pos));
        }
        fields.push(TrueField {
            offset: pos,
            len: 2,
            kind: FieldKind::Enum,
            name: "qtype",
        });
        fields.push(TrueField {
            offset: pos + 2,
            len: 2,
            kind: FieldKind::Enum,
            name: "qclass",
        });
        pos += 4;
    }
    for _ in 0..(ancount + nscount + arcount) {
        let nl = name_len(payload, pos)?;
        fields.push(TrueField {
            offset: pos,
            len: nl,
            kind: FieldKind::DomainName,
            name: "rr_name",
        });
        pos += nl;
        if pos + 10 > payload.len() {
            return Err(err("rr fixed part", pos));
        }
        let rr_type = rd16(pos);
        fields.push(TrueField {
            offset: pos,
            len: 2,
            kind: FieldKind::Enum,
            name: "rr_type",
        });
        fields.push(TrueField {
            offset: pos + 2,
            len: 2,
            kind: FieldKind::Enum,
            name: "rr_class",
        });
        fields.push(TrueField {
            offset: pos + 4,
            len: 4,
            kind: FieldKind::UInt,
            name: "rr_ttl",
        });
        let rdlen = rd16(pos + 8) as usize;
        fields.push(TrueField {
            offset: pos + 8,
            len: 2,
            kind: FieldKind::UInt,
            name: "rdlength",
        });
        pos += 10;
        if pos + rdlen > payload.len() {
            return Err(err("rdata", pos));
        }
        if rdlen > 0 {
            let kind = match rr_type {
                TYPE_A if rdlen == 4 => FieldKind::Ipv4,
                TYPE_CNAME => FieldKind::DomainName,
                TYPE_TXT => FieldKind::Chars,
                _ => FieldKind::Bytes,
            };
            fields.push(TrueField {
                offset: pos,
                len: rdlen,
                kind,
                name: "rdata",
            });
            pos += rdlen;
        }
    }
    if pos != payload.len() {
        return Err(err("end of message", pos));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields_tile_payload;

    #[test]
    fn all_messages_dissect_and_tile() {
        let t = generate(300, 11);
        for m in &t {
            let fields = dissect(m.payload())
                .unwrap_or_else(|e| panic!("dissect failed: {e} on {:02x?}", &m.payload()[..]));
            assert!(fields_tile_payload(&fields, m.payload().len()));
        }
    }

    #[test]
    fn queries_have_one_question_no_answers() {
        let t = generate(10, 1);
        let q = &t.messages()[0];
        let fields = dissect(q.payload()).unwrap();
        assert_eq!(fields.iter().filter(|f| f.name == "qname").count(), 1);
        assert_eq!(fields.iter().filter(|f| f.name == "rdata").count(), 0);
    }

    #[test]
    fn responses_echo_query_id() {
        let t = generate(20, 2);
        for pair in t.messages().chunks(2) {
            if pair.len() == 2 {
                assert_eq!(pair[0].payload()[..2], pair[1].payload()[..2]);
            }
        }
    }

    #[test]
    fn response_answers_match_ancount() {
        let t = generate(40, 3);
        for m in t.iter().filter(|m| m.direction() == Direction::Response) {
            let ancount = u16::from_be_bytes([m.payload()[6], m.payload()[7]]) as usize;
            let fields = dissect(m.payload()).unwrap();
            assert_eq!(
                fields.iter().filter(|f| f.name == "rr_name").count(),
                ancount
            );
        }
    }

    #[test]
    fn rejects_truncated_and_garbage() {
        assert!(dissect(&[0u8; 4]).is_err());
        // qdcount = 1 but no question bytes.
        let mut h = [0u8; 12];
        h[5] = 1;
        assert!(dissect(&h).is_err());
        // Label length 70 (invalid).
        let mut msg = vec![0u8; 12];
        msg[5] = 1;
        msg.push(70);
        msg.extend_from_slice(&[0u8; 80]);
        assert!(dissect(&msg).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let t = generate(2, 4);
        let mut p = t.messages()[0].payload().to_vec();
        p.push(0xAA);
        assert!(dissect(&p).is_err());
    }
}
