//! Shared generation machinery: seeded randomness, host pools, name
//! pools and an advancing capture clock.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trace::Endpoint;

/// NTP-era seconds for 2011-10-02 ≈ `0xD23D1900`, matching the epoch of
/// the SMIA-2011 captures the paper uses (and the byte prefix visible in
/// its Fig. 3).
pub const NTP_EPOCH_2011: u32 = 0xD23D_1900;

/// Unix seconds corresponding to [`NTP_EPOCH_2011`] (NTP epoch is 1900).
pub const UNIX_EPOCH_2011: u32 = NTP_EPOCH_2011.wrapping_sub(2_208_988_800);

/// A deterministic generation context: RNG, capture clock and pools of
/// plausible hosts and names shared by all protocol generators.
#[derive(Debug)]
pub struct GenCtx {
    rng: StdRng,
    /// Current capture time in microseconds since the Unix epoch.
    now_micros: u64,
    hosts: Vec<[u8; 4]>,
    macs: Vec<[u8; 6]>,
    hostnames: Vec<String>,
    domains: Vec<String>,
    client_ports: Vec<u16>,
}

impl GenCtx {
    /// Creates a context with `n_hosts` client hosts, seeded
    /// deterministically.
    pub fn new(seed: u64, n_hosts: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_hosts = n_hosts.max(1);
        let mut hosts = Vec::with_capacity(n_hosts);
        let mut macs = Vec::with_capacity(n_hosts);
        let mut hostnames = Vec::with_capacity(n_hosts);
        for i in 0..n_hosts {
            hosts.push([10, 0, rng.gen_range(0..4u8), 10 + i as u8]);
            let mut m = [0u8; 6];
            m[0] = 0x02; // locally administered
            for b in m.iter_mut().skip(1) {
                *b = rng.gen();
            }
            macs.push(m);
            hostnames.push(format!(
                "{}{:02}",
                HOSTNAME_STEMS[i % HOSTNAME_STEMS.len()],
                i
            ));
        }
        let domains = DOMAIN_STEMS.iter().map(|s| s.to_string()).collect();
        Self {
            rng,
            now_micros: u64::from(UNIX_EPOCH_2011) * 1_000_000,
            hosts,
            macs,
            hostnames,
            domains,
            client_ports: Vec::new(),
        }
    }

    /// Mutable access to the RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Current capture time (microseconds since the Unix epoch).
    pub fn now_micros(&self) -> u64 {
        self.now_micros
    }

    /// Current capture time as whole Unix seconds.
    pub fn now_unix_secs(&self) -> u32 {
        (self.now_micros / 1_000_000) as u32
    }

    /// Current capture time as NTP-era seconds.
    pub fn now_ntp_secs(&self) -> u32 {
        self.now_unix_secs().wrapping_add(2_208_988_800)
    }

    /// Advances the capture clock by a random inter-arrival time between
    /// 1 ms and 2 s and returns the new time in microseconds.
    pub fn tick(&mut self) -> u64 {
        self.now_micros += self.rng.gen_range(1_000..2_000_000);
        self.now_micros
    }

    /// Advances the capture clock by exactly `micros` microseconds
    /// (sub-message processing delays).
    pub fn advance_micros(&mut self, micros: u64) {
        self.now_micros += micros;
    }

    /// A random client host index.
    pub fn pick_host(&mut self) -> usize {
        self.rng.gen_range(0..self.hosts.len())
    }

    /// The IPv4 address of client host `i`.
    pub fn host_ip(&self, i: usize) -> [u8; 4] {
        self.hosts[i % self.hosts.len()]
    }

    /// The MAC address of client host `i`.
    pub fn host_mac(&self, i: usize) -> [u8; 6] {
        self.macs[i % self.macs.len()]
    }

    /// The hostname of client host `i`.
    pub fn hostname(&self, i: usize) -> &str {
        &self.hostnames[i % self.hostnames.len()]
    }

    /// A random domain name, occasionally decorated with a subdomain.
    pub fn pick_domain(&mut self) -> String {
        let base = self.domains[self.rng.gen_range(0..self.domains.len())].clone();
        if self.rng.gen_bool(0.4) {
            let sub = SUBDOMAIN_STEMS[self.rng.gen_range(0..SUBDOMAIN_STEMS.len())];
            format!("{sub}.{base}")
        } else {
            base
        }
    }

    /// A UDP endpoint for client host `i`. With `ephemeral`, the host gets
    /// a stable randomly chosen ephemeral port (one per host, as a real
    /// client socket would keep across a conversation); otherwise
    /// `service_port` is used.
    pub fn client_udp(&mut self, i: usize, ephemeral: bool, service_port: u16) -> Endpoint {
        let port = if ephemeral {
            self.client_port(i)
        } else {
            service_port
        };
        Endpoint::udp(self.host_ip(i), port)
    }

    /// The stable ephemeral port of client host `i`.
    pub fn client_port(&mut self, i: usize) -> u16 {
        let i = i % self.hosts.len();
        while self.client_ports.len() <= i {
            let p = self.rng.gen_range(1024..65000);
            self.client_ports.push(p);
        }
        self.client_ports[i]
    }

    /// Fills `buf` with random bytes.
    pub fn fill_random(&mut self, buf: &mut [u8]) {
        self.rng.fill(buf);
    }
}

const HOSTNAME_STEMS: [&str; 8] = [
    "workstation",
    "laptop",
    "printer",
    "fileserver",
    "desktop",
    "scanner",
    "kiosk",
    "buildbot",
];

const SUBDOMAIN_STEMS: [&str; 6] = ["www", "mail", "ns1", "cdn", "api", "static"];

const DOMAIN_STEMS: [&str; 12] = [
    "example.com",
    "uni-ulm.de",
    "seemoo.tu-darmstadt.de",
    "netresec.com",
    "ictf.cs.ucsb.edu",
    "pool.ntp.org",
    "wireshark.org",
    "kernel.org",
    "debian.org",
    "rust-lang.org",
    "ietf.org",
    "iana.org",
];

/// Encodes a DNS domain name as length-prefixed labels plus the root
/// label.
pub fn encode_dns_name(name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(name.len() + 2);
    for label in name.split('.') {
        debug_assert!(label.len() < 64, "DNS label too long");
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_deterministic() {
        let mut a = GenCtx::new(7, 4);
        let mut b = GenCtx::new(7, 4);
        for _ in 0..10 {
            assert_eq!(a.tick(), b.tick());
            assert_eq!(a.pick_host(), b.pick_host());
            assert_eq!(a.pick_domain(), b.pick_domain());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = GenCtx::new(1, 4);
        let mut b = GenCtx::new(2, 4);
        let seq_a: Vec<u64> = (0..5).map(|_| a.tick()).collect();
        let seq_b: Vec<u64> = (0..5).map(|_| b.tick()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = GenCtx::new(3, 2);
        let mut last = c.now_micros();
        for _ in 0..100 {
            let t = c.tick();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn ntp_epoch_matches_unix_epoch() {
        assert_eq!(UNIX_EPOCH_2011.wrapping_add(2_208_988_800), NTP_EPOCH_2011);
        let c = GenCtx::new(0, 1);
        assert_eq!(c.now_ntp_secs() & 0xFFFF_FF00, NTP_EPOCH_2011 & 0xFFFF_FF00);
    }

    #[test]
    fn dns_name_encoding() {
        assert_eq!(
            encode_dns_name("www.example.com"),
            b"\x03www\x07example\x03com\x00".to_vec()
        );
        assert_eq!(encode_dns_name("a"), b"\x01a\x00".to_vec());
    }

    #[test]
    fn host_pools_are_stable() {
        let c = GenCtx::new(9, 3);
        assert_eq!(c.host_ip(0), c.host_ip(3)); // wraps modulo pool size
        assert_eq!(c.hostname(1), c.hostname(4));
    }
}
