#![warn(missing_docs)]
//! Synthetic protocol traces with byte-exact ground truth.
//!
//! The paper (Kleber et al., DSN-W 2022) evaluates against captures of
//! DHCP, DNS, NBNS, NTP, SMB and the proprietary AWDL and Auto Unlock
//! (AU) protocols, using Wireshark dissectors as ground truth. Neither
//! the public captures nor the private dissectors are available offline,
//! so this crate substitutes both (DESIGN.md §4):
//!
//! * a **generator** per protocol emits protocol-conformant wire messages
//!   with realistic value distributions (host pools, advancing clocks,
//!   name pools, TLV layouts), and
//! * a **dissector** per protocol parses those bytes back into
//!   [`TrueField`]s — offset, length, and data-type label — that tile the
//!   message exactly.
//!
//! Generators and dissectors are implemented independently and
//! cross-validated in tests, playing the role the Wireshark dissectors
//! play in the paper.
//!
//! # Examples
//!
//! ```
//! use protocols::{Protocol, ProtocolSpec};
//!
//! let trace = Protocol::Ntp.generate(100, 42);
//! assert_eq!(trace.len(), 100);
//! let fields = Protocol::Ntp.dissect(trace.messages()[0].payload()).unwrap();
//! // NTP messages are fully covered by ground-truth fields.
//! let covered: usize = fields.iter().map(|f| f.len).sum();
//! assert_eq!(covered, trace.messages()[0].payload().len());
//! ```

pub mod au;
pub mod awdl;
pub mod corpus;
pub mod dhcp;
pub mod dns;
pub mod gen;
pub mod nbns;
pub mod ntp;
pub mod smb;

use serde::{Deserialize, Serialize};
use trace::Trace;

/// The data type of a protocol field — the label that clusters are
/// evaluated against (the paper's "true field data types from the
/// Wireshark dissectors", §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FieldKind {
    /// Enumerated code with few valid values (opcodes, message types).
    Enum,
    /// Bit-field of flags.
    Flags,
    /// Structured unsigned integer (counters, lengths, TTLs).
    UInt,
    /// Random-looking identifier (transaction/session IDs).
    Id,
    /// Absolute or relative time value.
    Timestamp,
    /// IPv4 address.
    Ipv4,
    /// 48-bit MAC address.
    MacAddr,
    /// Printable character sequence.
    Chars,
    /// DNS-style encoded domain name.
    DomainName,
    /// Opaque high-entropy bytes (signatures, hashes, nonces).
    Bytes,
    /// Checksum over other message content.
    Checksum,
    /// Zero or constant fill.
    Padding,
    /// 32-bit physical measurement sample (AU ranging results).
    Measurement,
}

impl FieldKind {
    /// Short lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FieldKind::Enum => "enum",
            FieldKind::Flags => "flags",
            FieldKind::UInt => "uint",
            FieldKind::Id => "id",
            FieldKind::Timestamp => "timestamp",
            FieldKind::Ipv4 => "ipv4",
            FieldKind::MacAddr => "macaddr",
            FieldKind::Chars => "chars",
            FieldKind::DomainName => "domain",
            FieldKind::Bytes => "bytes",
            FieldKind::Checksum => "checksum",
            FieldKind::Padding => "padding",
            FieldKind::Measurement => "measurement",
        }
    }
}

impl std::fmt::Display for FieldKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A ground-truth field: a typed byte range within one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrueField {
    /// Byte offset within the message payload.
    pub offset: usize,
    /// Length in bytes (always ≥ 1).
    pub len: usize,
    /// Data type label.
    pub kind: FieldKind,
    /// Human-readable field name from the specification.
    pub name: &'static str,
}

impl TrueField {
    /// The half-open byte range `[offset, offset + len)`.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// Error from a dissector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DissectError {
    /// Which protocol failed to parse.
    pub protocol: &'static str,
    /// What was expected at the failure point.
    pub context: &'static str,
    /// Byte offset at which parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for DissectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} dissection failed at offset {}: expected {}",
            self.protocol, self.offset, self.context
        )
    }
}

impl std::error::Error for DissectError {}

/// A protocol with a generator and a dissector.
pub trait ProtocolSpec {
    /// Canonical lowercase protocol name.
    fn name(&self) -> &'static str;

    /// Generates a deterministic trace of `n` messages from `seed`.
    ///
    /// Messages carry realistic flow metadata (endpoints, direction,
    /// advancing timestamps) so context-dependent baselines work.
    fn generate(&self, n: usize, seed: u64) -> Trace;

    /// Parses one message payload into ground-truth fields.
    ///
    /// The returned fields are sorted by offset and tile the payload
    /// exactly: no gaps, no overlap, full coverage.
    ///
    /// # Errors
    ///
    /// Returns [`DissectError`] when the payload does not conform to the
    /// protocol.
    fn dissect(&self, payload: &[u8]) -> Result<Vec<TrueField>, DissectError>;

    /// The ground-truth *message type* of a payload (e.g. `"dns query"`,
    /// `"smb negotiate request"`), used to evaluate message type
    /// identification.
    ///
    /// # Errors
    ///
    /// Returns [`DissectError`] when the payload does not conform to the
    /// protocol.
    fn message_type(&self, payload: &[u8]) -> Result<&'static str, DissectError>;
}

/// The seven evaluation protocols of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Dynamic Host Configuration Protocol (RFC 2131), UDP 67/68.
    Dhcp,
    /// Domain Name System (RFC 1035), UDP 53.
    Dns,
    /// NetBIOS Name Service (RFC 1002), UDP 137.
    Nbns,
    /// Network Time Protocol (RFC 958 lineage), UDP 123.
    Ntp,
    /// Server Message Block v1 over NetBIOS session service, TCP 445.
    Smb,
    /// Apple Wireless Direct Link action frames (link layer).
    Awdl,
    /// Apple Auto Unlock distance-bounding (link layer).
    Au,
}

impl Protocol {
    /// All evaluation protocols in the paper's table order.
    pub const ALL: [Protocol; 7] = [
        Protocol::Dhcp,
        Protocol::Dns,
        Protocol::Nbns,
        Protocol::Ntp,
        Protocol::Smb,
        Protocol::Awdl,
        Protocol::Au,
    ];

    /// Looks a protocol up by its lowercase name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl ProtocolSpec for Protocol {
    fn name(&self) -> &'static str {
        match self {
            Protocol::Dhcp => "dhcp",
            Protocol::Dns => "dns",
            Protocol::Nbns => "nbns",
            Protocol::Ntp => "ntp",
            Protocol::Smb => "smb",
            Protocol::Awdl => "awdl",
            Protocol::Au => "au",
        }
    }

    fn generate(&self, n: usize, seed: u64) -> Trace {
        match self {
            Protocol::Dhcp => dhcp::generate(n, seed),
            Protocol::Dns => dns::generate(n, seed),
            Protocol::Nbns => nbns::generate(n, seed),
            Protocol::Ntp => ntp::generate(n, seed),
            Protocol::Smb => smb::generate(n, seed),
            Protocol::Awdl => awdl::generate(n, seed),
            Protocol::Au => au::generate(n, seed),
        }
    }

    fn dissect(&self, payload: &[u8]) -> Result<Vec<TrueField>, DissectError> {
        match self {
            Protocol::Dhcp => dhcp::dissect(payload),
            Protocol::Dns => dns::dissect(payload),
            Protocol::Nbns => nbns::dissect(payload),
            Protocol::Ntp => ntp::dissect(payload),
            Protocol::Smb => smb::dissect(payload),
            Protocol::Awdl => awdl::dissect(payload),
            Protocol::Au => au::dissect(payload),
        }
    }

    fn message_type(&self, payload: &[u8]) -> Result<&'static str, DissectError> {
        match self {
            Protocol::Dhcp => dhcp::message_type(payload),
            Protocol::Dns => dns::message_type(payload),
            Protocol::Nbns => nbns::message_type(payload),
            Protocol::Ntp => ntp::message_type(payload),
            Protocol::Smb => smb::message_type(payload),
            Protocol::Awdl => awdl::message_type(payload),
            Protocol::Au => au::message_type(payload),
        }
    }
}

/// Checks that `fields` tile a payload of `len` bytes exactly: sorted,
/// gap-free, overlap-free, full coverage. Used by tests and debug
/// assertions throughout the workspace.
pub fn fields_tile_payload(fields: &[TrueField], len: usize) -> bool {
    let mut cursor = 0;
    for f in fields {
        if f.offset != cursor || f.len == 0 {
            return false;
        }
        cursor += f.len;
    }
    cursor == len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names_roundtrip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::from_name(p.name()), Some(p));
        }
        assert_eq!(Protocol::from_name("quic"), None);
    }

    #[test]
    fn field_kind_labels_are_unique() {
        let kinds = [
            FieldKind::Enum,
            FieldKind::Flags,
            FieldKind::UInt,
            FieldKind::Id,
            FieldKind::Timestamp,
            FieldKind::Ipv4,
            FieldKind::MacAddr,
            FieldKind::Chars,
            FieldKind::DomainName,
            FieldKind::Bytes,
            FieldKind::Checksum,
            FieldKind::Padding,
            FieldKind::Measurement,
        ];
        let set: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(set.len(), kinds.len());
    }

    #[test]
    fn tiling_checker() {
        let f = |offset, len| TrueField {
            offset,
            len,
            kind: FieldKind::UInt,
            name: "f",
        };
        assert!(fields_tile_payload(&[f(0, 2), f(2, 3)], 5));
        assert!(!fields_tile_payload(&[f(0, 2), f(3, 2)], 5)); // gap
        assert!(!fields_tile_payload(&[f(0, 2), f(1, 4)], 5)); // overlap
        assert!(!fields_tile_payload(&[f(0, 2)], 5)); // short
        assert!(!fields_tile_payload(&[f(0, 0)], 0)); // zero-length field
        assert!(fields_tile_payload(&[], 0));
    }
}
