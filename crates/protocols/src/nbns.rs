//! NetBIOS Name Service generator and dissector (RFC 1002, UDP 137):
//! name queries, positive name query responses and registration requests
//! with first-level encoded NetBIOS names.

use crate::gen::GenCtx;
use crate::{DissectError, FieldKind, TrueField};
use bytes::Bytes;
use rand::Rng;
use trace::{Direction, Endpoint, Message, Trace, Transport};

const NBNS_PORT: u16 = 137;
const TYPE_NB: u16 = 0x0020;
const CLASS_IN: u16 = 1;

/// First-level encodes a NetBIOS name (15 chars space-padded + suffix)
/// into the 32-character nibble expansion of RFC 1001 §14.1.
fn encode_netbios_name(name: &str, suffix: u8) -> Vec<u8> {
    let mut raw = [0x20u8; 16];
    for (i, b) in name.bytes().take(15).enumerate() {
        raw[i] = b.to_ascii_uppercase();
    }
    raw[15] = suffix;
    let mut out = Vec::with_capacity(34);
    out.push(32); // one label of 32 encoded characters
    for b in raw {
        out.push(b'A' + (b >> 4));
        out.push(b'A' + (b & 0x0F));
    }
    out.push(0); // root label
    out
}

/// Generates an NBNS trace: name queries, positive responses and periodic
/// name registration requests.
pub fn generate(n: usize, seed: u64) -> Trace {
    let mut ctx = GenCtx::new(seed ^ 0x4E42_4E53, 8);
    let broadcast = [10, 0, 3, 255];
    let mut messages = Vec::with_capacity(n);
    let mut pending: Option<(usize, u16, Vec<u8>)> = None;

    for i in 0..n {
        let ts = ctx.tick();
        let mut buf = Vec::with_capacity(80);
        let kind = i % 4; // 0: query, 1: response, 2: query, 3: registration

        match kind {
            1 => {
                // Positive name query response from the owning host.
                let (host, id, qname) = pending.take().unwrap_or_else(|| {
                    let h = ctx.pick_host();
                    let id = ctx.rng().gen();
                    let target = ctx.pick_host();
                    let name = ctx.hostname(target).to_string();
                    (h, id, encode_netbios_name(&name, 0x00))
                });
                buf.extend_from_slice(&id.to_be_bytes());
                buf.extend_from_slice(&0x8500u16.to_be_bytes()); // response, AA, RD
                buf.extend_from_slice(&0u16.to_be_bytes());
                buf.extend_from_slice(&1u16.to_be_bytes()); // ancount
                buf.extend_from_slice(&0u16.to_be_bytes());
                buf.extend_from_slice(&0u16.to_be_bytes());
                buf.extend_from_slice(&qname);
                buf.extend_from_slice(&TYPE_NB.to_be_bytes());
                buf.extend_from_slice(&CLASS_IN.to_be_bytes());
                let ttl: u32 = 300_000;
                buf.extend_from_slice(&ttl.to_be_bytes());
                buf.extend_from_slice(&6u16.to_be_bytes()); // rdlength
                buf.extend_from_slice(&0x6000u16.to_be_bytes()); // nb_flags: H-node, unique
                let owner = ctx.pick_host();
                buf.extend_from_slice(&ctx.host_ip(owner));
                let responder = ctx.pick_host();
                messages.push(
                    Message::builder(Bytes::from(buf))
                        .timestamp_micros(ts)
                        .source(ctx.client_udp(responder, false, NBNS_PORT))
                        .destination(ctx.client_udp(host, false, NBNS_PORT))
                        .transport(Transport::Udp)
                        .direction(Direction::Response)
                        .build(),
                );
            }
            3 => {
                // Name registration request (broadcast) with additional RR.
                let host = ctx.pick_host();
                let id: u16 = ctx.rng().gen();
                let name = ctx.hostname(host).to_string();
                let qname = encode_netbios_name(&name, 0x00);
                buf.extend_from_slice(&id.to_be_bytes());
                buf.extend_from_slice(&0x2910u16.to_be_bytes()); // registration, RD, B
                buf.extend_from_slice(&1u16.to_be_bytes());
                buf.extend_from_slice(&0u16.to_be_bytes());
                buf.extend_from_slice(&0u16.to_be_bytes());
                buf.extend_from_slice(&1u16.to_be_bytes()); // arcount
                buf.extend_from_slice(&qname);
                buf.extend_from_slice(&TYPE_NB.to_be_bytes());
                buf.extend_from_slice(&CLASS_IN.to_be_bytes());
                buf.extend_from_slice(&0xC00Cu16.to_be_bytes()); // pointer to qname
                buf.extend_from_slice(&TYPE_NB.to_be_bytes());
                buf.extend_from_slice(&CLASS_IN.to_be_bytes());
                let ttl: u32 = 300_000;
                buf.extend_from_slice(&ttl.to_be_bytes());
                buf.extend_from_slice(&6u16.to_be_bytes());
                buf.extend_from_slice(&0x2000u16.to_be_bytes());
                buf.extend_from_slice(&ctx.host_ip(host));
                messages.push(
                    Message::builder(Bytes::from(buf))
                        .timestamp_micros(ts)
                        .source(ctx.client_udp(host, false, NBNS_PORT))
                        .destination(Endpoint::udp(broadcast, NBNS_PORT))
                        .transport(Transport::Udp)
                        .direction(Direction::Request)
                        .build(),
                );
            }
            _ => {
                // Name query (broadcast).
                let host = ctx.pick_host();
                let id: u16 = ctx.rng().gen();
                let target = ctx.pick_host();
                let suffix = if ctx.rng().gen_bool(0.3) { 0x20 } else { 0x00 };
                let qname = encode_netbios_name(ctx.hostname(target), suffix);
                buf.extend_from_slice(&id.to_be_bytes());
                buf.extend_from_slice(&0x0110u16.to_be_bytes()); // query, RD, B
                buf.extend_from_slice(&1u16.to_be_bytes());
                buf.extend_from_slice(&0u16.to_be_bytes());
                buf.extend_from_slice(&0u16.to_be_bytes());
                buf.extend_from_slice(&0u16.to_be_bytes());
                buf.extend_from_slice(&qname);
                buf.extend_from_slice(&TYPE_NB.to_be_bytes());
                buf.extend_from_slice(&CLASS_IN.to_be_bytes());
                pending = Some((host, id, qname));
                messages.push(
                    Message::builder(Bytes::from(buf))
                        .timestamp_micros(ts)
                        .source(ctx.client_udp(host, false, NBNS_PORT))
                        .destination(Endpoint::udp(broadcast, NBNS_PORT))
                        .transport(Transport::Udp)
                        .direction(Direction::Request)
                        .build(),
                );
            }
        }
    }
    Trace::new("nbns", messages)
}

/// The ground-truth message type: response bit + opcode.
///
/// # Errors
///
/// Fails like [`dissect`] on malformed payloads.
pub fn message_type(payload: &[u8]) -> Result<&'static str, DissectError> {
    dissect(payload)?;
    let is_response = payload[2] & 0x80 != 0;
    let opcode = (payload[2] >> 3) & 0x0F;
    Ok(match (is_response, opcode) {
        (false, 0) => "nbns name query",
        (true, 0) => "nbns name query response",
        (false, 5) => "nbns name registration",
        (true, 5) => "nbns name registration response",
        (false, _) => "nbns other request",
        (true, _) => "nbns other response",
    })
}

/// Dissects an NBNS message into ground-truth fields.
///
/// # Errors
///
/// Fails on truncated headers, malformed names, or counts exceeding the
/// message.
pub fn dissect(payload: &[u8]) -> Result<Vec<TrueField>, DissectError> {
    let err = |context, offset| DissectError {
        protocol: "nbns",
        context,
        offset,
    };
    if payload.len() < 12 {
        return Err(err("12-byte header", payload.len()));
    }
    let rd16 = |at: usize| u16::from_be_bytes([payload[at], payload[at + 1]]);
    let qdcount = rd16(4) as usize;
    let ancount = rd16(6) as usize;
    let nscount = rd16(8) as usize;
    let arcount = rd16(10) as usize;

    let mut fields = vec![
        TrueField {
            offset: 0,
            len: 2,
            kind: FieldKind::Id,
            name: "name_trn_id",
        },
        TrueField {
            offset: 2,
            len: 2,
            kind: FieldKind::Flags,
            name: "flags",
        },
        TrueField {
            offset: 4,
            len: 2,
            kind: FieldKind::UInt,
            name: "qdcount",
        },
        TrueField {
            offset: 6,
            len: 2,
            kind: FieldKind::UInt,
            name: "ancount",
        },
        TrueField {
            offset: 8,
            len: 2,
            kind: FieldKind::UInt,
            name: "nscount",
        },
        TrueField {
            offset: 10,
            len: 2,
            kind: FieldKind::UInt,
            name: "arcount",
        },
    ];
    let mut pos = 12;
    for _ in 0..qdcount {
        let nl = crate::dns::name_len(payload, pos)?;
        fields.push(TrueField {
            offset: pos,
            len: nl,
            kind: FieldKind::DomainName,
            name: "qname",
        });
        pos += nl;
        if pos + 4 > payload.len() {
            return Err(err("question fixed part", pos));
        }
        fields.push(TrueField {
            offset: pos,
            len: 2,
            kind: FieldKind::Enum,
            name: "qtype",
        });
        fields.push(TrueField {
            offset: pos + 2,
            len: 2,
            kind: FieldKind::Enum,
            name: "qclass",
        });
        pos += 4;
    }
    for _ in 0..(ancount + nscount + arcount) {
        let nl = crate::dns::name_len(payload, pos)?;
        fields.push(TrueField {
            offset: pos,
            len: nl,
            kind: FieldKind::DomainName,
            name: "rr_name",
        });
        pos += nl;
        if pos + 10 > payload.len() {
            return Err(err("rr fixed part", pos));
        }
        fields.push(TrueField {
            offset: pos,
            len: 2,
            kind: FieldKind::Enum,
            name: "rr_type",
        });
        fields.push(TrueField {
            offset: pos + 2,
            len: 2,
            kind: FieldKind::Enum,
            name: "rr_class",
        });
        fields.push(TrueField {
            offset: pos + 4,
            len: 4,
            kind: FieldKind::UInt,
            name: "rr_ttl",
        });
        let rdlen = rd16(pos + 8) as usize;
        fields.push(TrueField {
            offset: pos + 8,
            len: 2,
            kind: FieldKind::UInt,
            name: "rdlength",
        });
        pos += 10;
        if pos + rdlen > payload.len() {
            return Err(err("rdata", pos));
        }
        if rdlen == 6 {
            // NB record: flags + address.
            fields.push(TrueField {
                offset: pos,
                len: 2,
                kind: FieldKind::Flags,
                name: "nb_flags",
            });
            fields.push(TrueField {
                offset: pos + 2,
                len: 4,
                kind: FieldKind::Ipv4,
                name: "nb_addr",
            });
        } else if rdlen > 0 {
            fields.push(TrueField {
                offset: pos,
                len: rdlen,
                kind: FieldKind::Bytes,
                name: "rdata",
            });
        }
        pos += rdlen;
    }
    if pos != payload.len() {
        return Err(err("end of message", pos));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields_tile_payload;

    #[test]
    fn all_messages_dissect_and_tile() {
        let t = generate(200, 21);
        for m in &t {
            let fields = dissect(m.payload()).unwrap();
            assert!(fields_tile_payload(&fields, m.payload().len()));
        }
    }

    #[test]
    fn encoded_names_are_32_chars() {
        let enc = encode_netbios_name("FILESERVER", 0x20);
        assert_eq!(enc.len(), 34);
        assert_eq!(enc[0], 32);
        assert_eq!(enc[33], 0);
        assert!(enc[1..33].iter().all(|&b| (b'A'..=b'P').contains(&b)));
    }

    #[test]
    fn registration_has_additional_record() {
        let t = generate(8, 1);
        // Message index 3 is a registration.
        let reg = &t.messages()[3];
        let arcount = u16::from_be_bytes([reg.payload()[10], reg.payload()[11]]);
        assert_eq!(arcount, 1);
        let fields = dissect(reg.payload()).unwrap();
        assert!(fields.iter().any(|f| f.name == "nb_addr"));
    }

    #[test]
    fn response_contains_owner_address() {
        let t = generate(8, 2);
        let resp = &t.messages()[1];
        let fields = dissect(resp.payload()).unwrap();
        let addr = fields.iter().find(|f| f.name == "nb_addr").unwrap();
        assert_eq!(addr.len, 4);
        assert_eq!(addr.kind, FieldKind::Ipv4);
    }

    #[test]
    fn rejects_malformed() {
        assert!(dissect(&[0u8; 3]).is_err());
        let t = generate(2, 3);
        let mut p = t.messages()[0].payload().to_vec();
        p.truncate(p.len() - 2);
        assert!(dissect(&p).is_err());
    }
}
