//! Network Time Protocol generator and dissector (RFC 958 lineage,
//! 48-byte fixed structure, optional authenticator).

use crate::gen::GenCtx;
use crate::{DissectError, FieldKind, TrueField};
use bytes::Bytes;
use rand::Rng;
use trace::{Direction, Endpoint, Message, Trace, Transport};

const NTP_PORT: u16 = 123;
const BASE_LEN: usize = 48;
const AUTH_LEN: usize = 20; // key id (4) + MD5 digest (16)

/// Generates an NTP trace of `n` messages: alternating client polls
/// (mode 3) and server replies (mode 4), ~10 % carrying an authenticator.
pub fn generate(n: usize, seed: u64) -> Trace {
    let mut ctx = GenCtx::new(seed ^ 0x4E54_5000, 6);
    let server_ip = [10, 0, 0, 1];
    let mut messages = Vec::with_capacity(n);
    let mut pending_client: Option<(usize, [u8; 8])> = None;

    for i in 0..n {
        let ts = ctx.tick();
        let is_request = i % 2 == 0;
        let host = if is_request {
            ctx.pick_host()
        } else {
            pending_client.map(|(h, _)| h).unwrap_or(0)
        };
        let with_auth = ctx.rng().gen_bool(0.1);

        let mut buf = Vec::with_capacity(BASE_LEN + AUTH_LEN);
        if is_request {
            buf.push(0b00_011_011); // LI=0 VN=3 Mode=3 (client)
            buf.push(0); // stratum unspecified
            buf.push(6); // poll
            buf.push(0); // precision
            buf.extend_from_slice(&[0, 0, 0, 0]); // root delay
            buf.extend_from_slice(&[0, 0, 0, 0]); // root dispersion
            buf.extend_from_slice(&[0, 0, 0, 0]); // reference id
            buf.extend_from_slice(&[0u8; 8]); // reference ts
            buf.extend_from_slice(&[0u8; 8]); // origin ts
            buf.extend_from_slice(&[0u8; 8]); // receive ts
            let xmt = ntp_timestamp(&mut ctx);
            buf.extend_from_slice(&xmt);
            pending_client = Some((host, xmt));
        } else {
            buf.push(0b00_011_100); // LI=0 VN=3 Mode=4 (server)
            buf.push(ctx.rng().gen_range(1..4u8)); // stratum
            buf.push(6); // poll
            buf.push(0xEC); // precision (~2^-20)
            let delay: u32 = ctx.rng().gen_range(0x0100..0x4000);
            buf.extend_from_slice(&delay.to_be_bytes());
            let disp: u32 = ctx.rng().gen_range(0x0100..0x2000);
            buf.extend_from_slice(&disp.to_be_bytes());
            let upstream = ctx_upstream(&mut ctx);
            buf.extend_from_slice(&ctx.host_ip(upstream)); // reference id: upstream server
            buf.extend_from_slice(&ntp_timestamp(&mut ctx)); // reference ts
            let origin = pending_client.take().map(|(_, x)| x).unwrap_or([0u8; 8]);
            buf.extend_from_slice(&origin); // origin ts echoes client transmit
            buf.extend_from_slice(&ntp_timestamp(&mut ctx)); // receive ts
            buf.extend_from_slice(&ntp_timestamp(&mut ctx)); // transmit ts
        }
        if with_auth {
            let key_id: u32 = ctx.rng().gen_range(1..16);
            buf.extend_from_slice(&key_id.to_be_bytes());
            let mut digest = [0u8; 16];
            ctx.fill_random(&mut digest);
            buf.extend_from_slice(&digest);
        }

        let client = ctx.client_udp(host, true, NTP_PORT);
        let server = Endpoint::udp(server_ip, NTP_PORT);
        let (src, dst, dir) = if is_request {
            (client, server, Direction::Request)
        } else {
            (server, client, Direction::Response)
        };
        messages.push(
            Message::builder(Bytes::from(buf))
                .timestamp_micros(ts)
                .source(src)
                .destination(dst)
                .transport(Transport::Udp)
                .direction(dir)
                .build(),
        );
    }
    Trace::new("ntp", messages)
}

fn ctx_upstream(ctx: &mut GenCtx) -> usize {
    ctx.rng().gen_range(0..3)
}

/// An 8-byte NTP timestamp derived from the capture clock: advancing
/// era seconds plus the clock-derived binary fraction. The high bytes
/// stay nearly constant across a capture (cf. the paper's Fig. 3:
/// `d2 3d 19 ..`) while the low fraction bytes look random. Each call
/// advances the clock by a few dozen microseconds of "processing time"
/// so the timestamps within one message are ordered, as real NTP stamps
/// are.
fn ntp_timestamp(ctx: &mut GenCtx) -> [u8; 8] {
    let advance = ctx.rng().gen_range(20..300);
    ctx.advance_micros(advance);
    let secs = ctx.now_ntp_secs();
    let micros = ctx.now_micros() % 1_000_000;
    // 2^32 / 10^6 ≈ 4294.967296: microseconds to binary fraction.
    let frac = (micros as f64 * 4_294.967_296) as u32;
    let mut out = [0u8; 8];
    out[..4].copy_from_slice(&secs.to_be_bytes());
    out[4..].copy_from_slice(&frac.to_be_bytes());
    out
}

/// The ground-truth message type: derived from the mode nibble.
///
/// # Errors
///
/// Fails like [`dissect`] on malformed payloads.
pub fn message_type(payload: &[u8]) -> Result<&'static str, DissectError> {
    dissect(payload)?;
    Ok(match payload[0] & 0x07 {
        1 => "ntp symmetric-active",
        2 => "ntp symmetric-passive",
        3 => "ntp client",
        4 => "ntp server",
        _ => "ntp broadcast",
    })
}

/// Dissects one NTP message into ground-truth fields.
///
/// # Errors
///
/// Fails when the payload is not 48 bytes (or 68 with authenticator) or
/// the mode nibble is invalid.
pub fn dissect(payload: &[u8]) -> Result<Vec<TrueField>, DissectError> {
    let err = |context, offset| DissectError {
        protocol: "ntp",
        context,
        offset,
    };
    if payload.len() != BASE_LEN && payload.len() != BASE_LEN + AUTH_LEN {
        return Err(err("48 or 68 byte datagram", payload.len()));
    }
    let mode = payload[0] & 0x07;
    if !(1..=5).contains(&mode) {
        return Err(err("mode 1-5", 0));
    }
    let mut fields = vec![
        TrueField {
            offset: 0,
            len: 1,
            kind: FieldKind::Flags,
            name: "li_vn_mode",
        },
        TrueField {
            offset: 1,
            len: 1,
            kind: FieldKind::UInt,
            name: "stratum",
        },
        TrueField {
            offset: 2,
            len: 1,
            kind: FieldKind::UInt,
            name: "poll",
        },
        TrueField {
            offset: 3,
            len: 1,
            kind: FieldKind::UInt,
            name: "precision",
        },
        TrueField {
            offset: 4,
            len: 4,
            kind: FieldKind::UInt,
            name: "root_delay",
        },
        TrueField {
            offset: 8,
            len: 4,
            kind: FieldKind::UInt,
            name: "root_dispersion",
        },
        TrueField {
            offset: 12,
            len: 4,
            kind: FieldKind::Ipv4,
            name: "reference_id",
        },
        TrueField {
            offset: 16,
            len: 8,
            kind: FieldKind::Timestamp,
            name: "reference_ts",
        },
        TrueField {
            offset: 24,
            len: 8,
            kind: FieldKind::Timestamp,
            name: "origin_ts",
        },
        TrueField {
            offset: 32,
            len: 8,
            kind: FieldKind::Timestamp,
            name: "receive_ts",
        },
        TrueField {
            offset: 40,
            len: 8,
            kind: FieldKind::Timestamp,
            name: "transmit_ts",
        },
    ];
    if payload.len() == BASE_LEN + AUTH_LEN {
        fields.push(TrueField {
            offset: 48,
            len: 4,
            kind: FieldKind::UInt,
            name: "key_id",
        });
        fields.push(TrueField {
            offset: 52,
            len: 16,
            kind: FieldKind::Bytes,
            name: "digest",
        });
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields_tile_payload;

    #[test]
    fn generates_requested_count() {
        let t = generate(50, 1);
        assert_eq!(t.len(), 50);
        assert_eq!(t.name(), "ntp");
    }

    #[test]
    fn all_messages_dissect_and_tile() {
        let t = generate(200, 2);
        for m in &t {
            let fields = dissect(m.payload()).unwrap();
            assert!(fields_tile_payload(&fields, m.payload().len()));
        }
    }

    #[test]
    fn timestamps_share_high_bytes() {
        let t = generate(100, 3);
        // Server transmit timestamps all start with the same era byte.
        let firsts: std::collections::HashSet<u8> = t
            .iter()
            .filter(|m| m.payload()[0] & 0x07 == 4)
            .map(|m| m.payload()[40])
            .collect();
        assert_eq!(
            firsts.len(),
            1,
            "era byte must be constant within a capture"
        );
    }

    #[test]
    fn responses_echo_origin_timestamp() {
        let t = generate(10, 4);
        let msgs = t.messages();
        for pair in msgs.chunks(2) {
            if pair.len() == 2 {
                let req_xmt = &pair[0].payload()[40..48];
                let resp_origin = &pair[1].payload()[24..32];
                assert_eq!(req_xmt, resp_origin);
            }
        }
    }

    #[test]
    fn rejects_wrong_length_and_mode() {
        assert!(dissect(&[0u8; 47]).is_err());
        let mut buf = [0u8; 48];
        buf[0] = 0x00; // mode 0 invalid
        assert!(dissect(&buf).is_err());
        buf[0] = 0x1B;
        assert!(dissect(&buf).is_ok());
    }

    #[test]
    fn ports_and_directions_are_set() {
        let t = generate(4, 5);
        let m0 = &t.messages()[0];
        assert_eq!(m0.destination().port, Some(NTP_PORT));
        assert_eq!(m0.direction(), Direction::Request);
        let m1 = &t.messages()[1];
        assert_eq!(m1.source().port, Some(NTP_PORT));
        assert_eq!(m1.direction(), Direction::Response);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(20, 9);
        let b = generate(20, 9);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.payload(), y.payload());
        }
        let c = generate(20, 10);
        assert!(a
            .iter()
            .zip(c.iter())
            .any(|(x, y)| x.payload() != y.payload()));
    }
}
