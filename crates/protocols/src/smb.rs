//! SMB1 generator and dissector (over the NetBIOS session service, TCP
//! 445): Negotiate, Session Setup AndX and Tree Connect AndX exchanges.
//!
//! SMB is the paper's hard case: its header carries an 8-byte random
//! security signature that heuristic segmenters shred, and its Negotiate
//! response mixes a little-endian FILETIME timestamp with that signature —
//! the cluster confusion discussed in §IV-B. All multi-byte quantities are
//! little-endian per the SMB specification.

use crate::gen::GenCtx;
use crate::{DissectError, FieldKind, TrueField};
use bytes::Bytes;
use rand::Rng;
use trace::{Direction, Endpoint, Message, Trace, Transport};

const SMB_PORT: u16 = 445;
const CMD_NEGOTIATE: u8 = 0x72;
const CMD_SESSION_SETUP: u8 = 0x73;
const CMD_TREE_CONNECT: u8 = 0x75;
const CMD_READ_ANDX: u8 = 0x2E;
const FLAG_REPLY: u8 = 0x80;

const DIALECTS: [&str; 3] = ["PC NETWORK PROGRAM 1.0", "LANMAN1.0", "NT LM 0.12"];
const SHARES: [&str; 4] = ["DOCS", "SCANS", "BUILDS", "PUBLIC"];

/// Generates an SMB1 trace: eight-message conversations (Negotiate,
/// Session Setup AndX, Tree Connect AndX, Read AndX — request and
/// response each). Read responses carry a few hundred bytes of file
/// content, as real file-sharing traffic does.
pub fn generate(n: usize, seed: u64) -> Trace {
    let mut ctx = GenCtx::new(seed ^ 0x534D_4200, 8);
    let server_ip = [10, 0, 0, 4];
    let mut messages = Vec::with_capacity(n);
    let mut host = 0usize;
    let mut pid: u16 = 0;
    let mut mid: u16 = 0;
    let mut uid: u16 = 0;
    let mut tid: u16 = 0;

    let mut read_fid: u16 = 0;
    let mut read_offset: u32 = 0;
    for i in 0..n {
        let ts = ctx.tick();
        let phase = i % 8;
        if phase == 0 {
            host = ctx.pick_host();
            pid = ctx.rng().gen_range(0x0400..0xF000);
            mid = ctx.rng().gen_range(1..64);
            uid = 0;
            tid = 0;
        }
        let is_reply = phase % 2 == 1;
        if phase == 3 {
            uid = ctx.rng().gen_range(0x0800..0xF000); // granted by session setup reply
        }
        if phase == 5 {
            tid = ctx.rng().gen_range(1..0x4000); // granted by tree connect reply
        }
        if phase == 6 {
            read_fid = ctx.rng().gen_range(0x1000..0xF000);
            read_offset = ctx.rng().gen_range(0..0x0010_0000u32) & !0x1FF;
        }
        let command = [
            CMD_NEGOTIATE,
            CMD_SESSION_SETUP,
            CMD_TREE_CONNECT,
            CMD_READ_ANDX,
        ][phase / 2];

        // SMB body, assembled before the NBSS header so we know the length.
        let mut smb = Vec::with_capacity(160);
        smb.extend_from_slice(b"\xffSMB");
        smb.push(command);
        smb.extend_from_slice(&0u32.to_le_bytes()); // status: success
        smb.push(if is_reply { FLAG_REPLY | 0x08 } else { 0x08 }); // flags
        smb.extend_from_slice(&0xC803u16.to_le_bytes()); // flags2 (LE), signatures enabled
        smb.extend_from_slice(&0u16.to_le_bytes()); // pid_high
        let mut signature = [0u8; 8];
        ctx.fill_random(&mut signature);
        smb.extend_from_slice(&signature);
        smb.extend_from_slice(&[0, 0]); // reserved
        smb.extend_from_slice(&tid.to_le_bytes());
        smb.extend_from_slice(&pid.to_le_bytes());
        smb.extend_from_slice(&uid.to_le_bytes());
        smb.extend_from_slice(&mid.to_le_bytes());

        match (command, is_reply) {
            (CMD_NEGOTIATE, false) => {
                smb.push(0); // word count
                let mut data = Vec::new();
                for d in DIALECTS {
                    data.push(0x02);
                    data.extend_from_slice(d.as_bytes());
                    data.push(0);
                }
                smb.extend_from_slice(&(data.len() as u16).to_le_bytes());
                smb.extend_from_slice(&data);
            }
            (CMD_NEGOTIATE, true) => {
                smb.push(17);
                smb.extend_from_slice(&2u16.to_le_bytes()); // dialect index: NT LM 0.12
                smb.push(0x03); // security mode
                smb.extend_from_slice(&50u16.to_le_bytes()); // max mpx
                smb.extend_from_slice(&1u16.to_le_bytes()); // max vcs
                smb.extend_from_slice(&16644u32.to_le_bytes()); // max buffer
                smb.extend_from_slice(&65536u32.to_le_bytes()); // max raw
                let session_key: u32 = ctx.rng().gen();
                smb.extend_from_slice(&session_key.to_le_bytes());
                smb.extend_from_slice(&0x8000_E3FDu32.to_le_bytes()); // capabilities
                let filetime =
                    unix_to_filetime(ctx.now_unix_secs(), ctx.rng().gen_range(0..10_000_000));
                smb.extend_from_slice(&filetime.to_le_bytes()); // system time
                smb.extend_from_slice(&(-60i16 as u16).to_le_bytes()); // tz offset
                smb.push(0); // key length
                let mut guid = [0u8; 16];
                ctx.fill_random(&mut guid);
                smb.extend_from_slice(&(guid.len() as u16).to_le_bytes());
                smb.extend_from_slice(&guid);
            }
            (CMD_SESSION_SETUP, false) => {
                smb.push(13);
                smb.push(0xFF); // andx: none
                smb.push(0);
                smb.extend_from_slice(&0u16.to_le_bytes()); // andx offset
                smb.extend_from_slice(&16644u16.to_le_bytes()); // max buffer
                smb.extend_from_slice(&50u16.to_le_bytes()); // max mpx
                smb.extend_from_slice(&1u16.to_le_bytes()); // vc number
                let session_key: u32 = ctx.rng().gen();
                smb.extend_from_slice(&session_key.to_le_bytes());
                smb.extend_from_slice(&24u16.to_le_bytes()); // ansi pwd len
                smb.extend_from_slice(&0u16.to_le_bytes()); // unicode pwd len
                smb.extend_from_slice(&0u32.to_le_bytes()); // reserved
                smb.extend_from_slice(&0x0000_00D4u32.to_le_bytes()); // capabilities
                let mut data = Vec::new();
                let mut pwd = [0u8; 24];
                ctx.fill_random(&mut pwd);
                data.extend_from_slice(&pwd);
                for s in [
                    format!("user{:02}", host),
                    "WORKGROUP".to_string(),
                    "Unix".to_string(),
                    "Samba".to_string(),
                ] {
                    data.extend_from_slice(s.as_bytes());
                    data.push(0);
                }
                smb.extend_from_slice(&(data.len() as u16).to_le_bytes());
                smb.extend_from_slice(&data);
            }
            (CMD_SESSION_SETUP, true) => {
                smb.push(3);
                smb.push(0xFF);
                smb.push(0);
                smb.extend_from_slice(&0u16.to_le_bytes());
                smb.extend_from_slice(&1u16.to_le_bytes()); // action: guest
                let mut data = Vec::new();
                for s in ["Unix", "Samba 3.6.3", "WORKGROUP"] {
                    data.extend_from_slice(s.as_bytes());
                    data.push(0);
                }
                smb.extend_from_slice(&(data.len() as u16).to_le_bytes());
                smb.extend_from_slice(&data);
            }
            (CMD_TREE_CONNECT, false) => {
                smb.push(4);
                smb.push(0xFF);
                smb.push(0);
                smb.extend_from_slice(&0u16.to_le_bytes());
                smb.extend_from_slice(&0x0008u16.to_le_bytes()); // flags
                smb.extend_from_slice(&1u16.to_le_bytes()); // password length
                let mut data = Vec::new();
                data.push(0); // empty password
                let share = SHARES[ctx.rng().gen_range(0..SHARES.len())];
                data.extend_from_slice(format!("\\\\FILESERVER\\{share}").as_bytes());
                data.push(0);
                data.extend_from_slice(b"?????");
                data.push(0);
                smb.extend_from_slice(&(data.len() as u16).to_le_bytes());
                smb.extend_from_slice(&data);
            }
            (CMD_TREE_CONNECT, true) => {
                smb.push(3);
                smb.push(0xFF);
                smb.push(0);
                smb.extend_from_slice(&0u16.to_le_bytes());
                smb.extend_from_slice(&0x0001u16.to_le_bytes()); // optional support
                let mut data = Vec::new();
                data.extend_from_slice(b"A:");
                data.push(0);
                data.extend_from_slice(b"NTFS");
                data.push(0);
                smb.extend_from_slice(&(data.len() as u16).to_le_bytes());
                smb.extend_from_slice(&data);
            }
            (CMD_READ_ANDX, false) => {
                smb.push(10);
                smb.push(0xFF);
                smb.push(0);
                smb.extend_from_slice(&0u16.to_le_bytes()); // andx offset
                smb.extend_from_slice(&read_fid.to_le_bytes());
                smb.extend_from_slice(&read_offset.to_le_bytes());
                smb.extend_from_slice(&512u16.to_le_bytes()); // max count
                smb.extend_from_slice(&512u16.to_le_bytes()); // min count
                smb.extend_from_slice(&0u32.to_le_bytes()); // timeout
                smb.extend_from_slice(&0u16.to_le_bytes()); // remaining
                smb.extend_from_slice(&0u16.to_le_bytes()); // byte count
            }
            (CMD_READ_ANDX, true) => {
                let content = file_content(&mut ctx);
                smb.push(12);
                smb.push(0xFF);
                smb.push(0);
                smb.extend_from_slice(&0u16.to_le_bytes()); // andx offset
                smb.extend_from_slice(&0u16.to_le_bytes()); // available
                smb.extend_from_slice(&0u16.to_le_bytes()); // data compaction
                smb.extend_from_slice(&0u16.to_le_bytes()); // reserved
                smb.extend_from_slice(&(content.len() as u16).to_le_bytes()); // data length
                smb.extend_from_slice(&64u16.to_le_bytes()); // data offset
                smb.extend_from_slice(&[0u8; 10]); // reserved2
                smb.extend_from_slice(&((content.len() + 1) as u16).to_le_bytes()); // byte count
                smb.push(0); // padding before data
                smb.extend_from_slice(&content);
            }
            _ => unreachable!("phase covers exactly the four commands"),
        }

        let mut buf = Vec::with_capacity(smb.len() + 4);
        buf.push(0); // NBSS session message
        let len = smb.len() as u32;
        buf.extend_from_slice(&len.to_be_bytes()[1..4]); // 24-bit length
        buf.extend_from_slice(&smb);

        let client = Endpoint::udp(ctx.host_ip(host), 40000 + ctx.client_port(host) % 20000);
        let server = Endpoint::udp(server_ip, SMB_PORT);
        let (src, dst, dir) = if is_reply {
            (server, client, Direction::Response)
        } else {
            (client, server, Direction::Request)
        };
        messages.push(
            Message::builder(Bytes::from(buf))
                .timestamp_micros(ts)
                .source(src)
                .destination(dst)
                .transport(Transport::Tcp)
                .direction(dir)
                .build(),
        );
    }
    Trace::new("smb", messages)
}

/// A few hundred bytes of plausible file content for Read AndX
/// responses: server log lines, as a file share would serve.
fn file_content(ctx: &mut GenCtx) -> Vec<u8> {
    let mut out = Vec::with_capacity(512);
    let n_lines = ctx.rng().gen_range(5..12);
    for _ in 0..n_lines {
        let host = ctx.pick_host();
        let host_name = ctx.hostname(host).to_string();
        let line = format!(
            "2011-10-0{} {:02}:{:02}:{:02} {} GET /builds/nightly-{}.tar.gz {}\n",
            ctx.rng().gen_range(1..8u8),
            ctx.rng().gen_range(0..24u8),
            ctx.rng().gen_range(0..60u8),
            ctx.rng().gen_range(0..60u8),
            host_name,
            ctx.rng().gen_range(1000..9999u16),
            [200u16, 200, 200, 304, 404][ctx.rng().gen_range(0..5usize)],
        );
        out.extend_from_slice(line.as_bytes());
    }
    out
}

/// Converts Unix seconds (+ a 100ns remainder) to a Windows FILETIME.
fn unix_to_filetime(unix_secs: u32, remainder_100ns: u32) -> u64 {
    (u64::from(unix_secs) + 11_644_473_600) * 10_000_000 + u64::from(remainder_100ns)
}

struct FieldSink {
    fields: Vec<TrueField>,
    pos: usize,
}

impl FieldSink {
    fn push(&mut self, len: usize, kind: FieldKind, name: &'static str) {
        self.fields.push(TrueField {
            offset: self.pos,
            len,
            kind,
            name,
        });
        self.pos += len;
    }
}

/// The ground-truth message type: command plus request/reply direction.
///
/// # Errors
///
/// Fails like [`dissect`] on malformed payloads.
pub fn message_type(payload: &[u8]) -> Result<&'static str, DissectError> {
    dissect(payload)?;
    let command = payload[8];
    let is_reply = payload[13] & FLAG_REPLY != 0;
    Ok(match (command, is_reply) {
        (CMD_NEGOTIATE, false) => "smb negotiate request",
        (CMD_NEGOTIATE, true) => "smb negotiate response",
        (CMD_SESSION_SETUP, false) => "smb session setup request",
        (CMD_SESSION_SETUP, true) => "smb session setup response",
        (CMD_TREE_CONNECT, false) => "smb tree connect request",
        (CMD_TREE_CONNECT, true) => "smb tree connect response",
        (CMD_READ_ANDX, false) => "smb read request",
        (CMD_READ_ANDX, true) => "smb read response",
        _ => "smb other",
    })
}

/// Dissects an SMB1-over-NBSS message into ground-truth fields.
///
/// # Errors
///
/// Fails on truncated or non-SMB payloads and on unknown command layouts.
pub fn dissect(payload: &[u8]) -> Result<Vec<TrueField>, DissectError> {
    let err = |context, offset| DissectError {
        protocol: "smb",
        context,
        offset,
    };
    if payload.len() < 4 + 33 {
        return Err(err("NBSS + SMB header", payload.len()));
    }
    let nbss_len =
        usize::from(payload[1]) << 16 | usize::from(payload[2]) << 8 | usize::from(payload[3]);
    if 4 + nbss_len != payload.len() {
        return Err(err("NBSS length", 1));
    }
    if &payload[4..8] != b"\xffSMB" {
        return Err(err("SMB magic", 4));
    }
    let command = payload[8];
    let is_reply = payload[13] & FLAG_REPLY != 0;

    let mut sink = FieldSink {
        fields: Vec::with_capacity(40),
        pos: 0,
    };
    sink.push(1, FieldKind::Enum, "nbss_type");
    sink.push(3, FieldKind::UInt, "nbss_length");
    sink.push(4, FieldKind::Enum, "smb_magic");
    sink.push(1, FieldKind::Enum, "command");
    sink.push(4, FieldKind::Enum, "status");
    sink.push(1, FieldKind::Flags, "flags");
    sink.push(2, FieldKind::Flags, "flags2");
    sink.push(2, FieldKind::UInt, "pid_high");
    sink.push(8, FieldKind::Bytes, "signature");
    sink.push(2, FieldKind::Padding, "reserved");
    sink.push(2, FieldKind::Id, "tid");
    sink.push(2, FieldKind::Id, "pid");
    sink.push(2, FieldKind::Id, "uid");
    sink.push(2, FieldKind::Id, "mid");

    let wc = usize::from(
        *payload
            .get(sink.pos)
            .ok_or_else(|| err("word count", sink.pos))?,
    );
    sink.push(1, FieldKind::UInt, "word_count");
    let words_end = sink.pos + 2 * wc;
    if words_end + 2 > payload.len() {
        return Err(err("parameter words", sink.pos));
    }

    match (command, is_reply, wc) {
        (CMD_NEGOTIATE, false, 0) => {}
        (CMD_NEGOTIATE, true, 17) => {
            sink.push(2, FieldKind::UInt, "dialect_index");
            sink.push(1, FieldKind::Flags, "security_mode");
            sink.push(2, FieldKind::UInt, "max_mpx");
            sink.push(2, FieldKind::UInt, "max_vcs");
            sink.push(4, FieldKind::UInt, "max_buffer");
            sink.push(4, FieldKind::UInt, "max_raw");
            sink.push(4, FieldKind::Id, "session_key");
            sink.push(4, FieldKind::Flags, "capabilities");
            sink.push(8, FieldKind::Timestamp, "system_time");
            sink.push(2, FieldKind::UInt, "server_tz");
            sink.push(1, FieldKind::UInt, "key_length");
        }
        (CMD_SESSION_SETUP, false, 13) => {
            sink.push(1, FieldKind::Enum, "andx_command");
            sink.push(1, FieldKind::Padding, "andx_reserved");
            sink.push(2, FieldKind::UInt, "andx_offset");
            sink.push(2, FieldKind::UInt, "max_buffer");
            sink.push(2, FieldKind::UInt, "max_mpx");
            sink.push(2, FieldKind::UInt, "vc_number");
            sink.push(4, FieldKind::Id, "session_key");
            sink.push(2, FieldKind::UInt, "ansi_pwd_len");
            sink.push(2, FieldKind::UInt, "unicode_pwd_len");
            sink.push(4, FieldKind::Padding, "reserved2");
            sink.push(4, FieldKind::Flags, "capabilities");
        }
        (CMD_SESSION_SETUP, true, 3) => {
            sink.push(1, FieldKind::Enum, "andx_command");
            sink.push(1, FieldKind::Padding, "andx_reserved");
            sink.push(2, FieldKind::UInt, "andx_offset");
            sink.push(2, FieldKind::Flags, "action");
        }
        (CMD_TREE_CONNECT, false, 4) => {
            sink.push(1, FieldKind::Enum, "andx_command");
            sink.push(1, FieldKind::Padding, "andx_reserved");
            sink.push(2, FieldKind::UInt, "andx_offset");
            sink.push(2, FieldKind::Flags, "tc_flags");
            sink.push(2, FieldKind::UInt, "password_length");
        }
        (CMD_TREE_CONNECT, true, 3) => {
            sink.push(1, FieldKind::Enum, "andx_command");
            sink.push(1, FieldKind::Padding, "andx_reserved");
            sink.push(2, FieldKind::UInt, "andx_offset");
            sink.push(2, FieldKind::Flags, "optional_support");
        }
        (CMD_READ_ANDX, false, 10) => {
            sink.push(1, FieldKind::Enum, "andx_command");
            sink.push(1, FieldKind::Padding, "andx_reserved");
            sink.push(2, FieldKind::UInt, "andx_offset");
            sink.push(2, FieldKind::Id, "fid");
            sink.push(4, FieldKind::UInt, "read_offset");
            sink.push(2, FieldKind::UInt, "max_count");
            sink.push(2, FieldKind::UInt, "min_count");
            sink.push(4, FieldKind::UInt, "timeout");
            sink.push(2, FieldKind::UInt, "remaining");
        }
        (CMD_READ_ANDX, true, 12) => {
            sink.push(1, FieldKind::Enum, "andx_command");
            sink.push(1, FieldKind::Padding, "andx_reserved");
            sink.push(2, FieldKind::UInt, "andx_offset");
            sink.push(2, FieldKind::UInt, "available");
            sink.push(2, FieldKind::UInt, "data_compaction");
            sink.push(2, FieldKind::Padding, "reserved1");
            sink.push(2, FieldKind::UInt, "data_length");
            sink.push(2, FieldKind::UInt, "data_offset");
            sink.push(10, FieldKind::Padding, "reserved2");
        }
        _ => return Err(err("known command/word-count layout", 8)),
    }
    debug_assert_eq!(sink.pos, words_end, "command layout must consume all words");

    let bc = usize::from(u16::from_le_bytes([
        payload[sink.pos],
        payload[sink.pos + 1],
    ]));
    sink.push(2, FieldKind::UInt, "byte_count");
    let data_end = sink.pos + bc;
    if data_end != payload.len() {
        return Err(err("byte count consistent with payload", sink.pos - 2));
    }

    match (command, is_reply) {
        (CMD_NEGOTIATE, false) => {
            while sink.pos < data_end {
                if payload[sink.pos] != 0x02 {
                    return Err(err("dialect buffer format 0x02", sink.pos));
                }
                sink.push(1, FieldKind::Enum, "buffer_format");
                let s = nul_string_len(payload, sink.pos, data_end)
                    .ok_or_else(|| err("dialect string", sink.pos))?;
                sink.push(s, FieldKind::Chars, "dialect");
            }
        }
        (CMD_NEGOTIATE, true) => {
            if bc > 0 {
                sink.push(bc, FieldKind::Bytes, "server_guid");
            }
        }
        (CMD_SESSION_SETUP, false) => {
            // ANSI password hash, then four NUL-terminated strings.
            let pwd_len = 24.min(data_end - sink.pos);
            sink.push(pwd_len, FieldKind::Bytes, "ansi_password");
            for name in ["account", "domain", "native_os", "native_lanman"] {
                if sink.pos >= data_end {
                    break;
                }
                let s = nul_string_len(payload, sink.pos, data_end)
                    .ok_or_else(|| err("setup string", sink.pos))?;
                sink.push(s, FieldKind::Chars, name);
            }
        }
        (CMD_SESSION_SETUP, true) => {
            for name in ["native_os", "native_lanman", "domain"] {
                if sink.pos >= data_end {
                    break;
                }
                let s = nul_string_len(payload, sink.pos, data_end)
                    .ok_or_else(|| err("setup string", sink.pos))?;
                sink.push(s, FieldKind::Chars, name);
            }
        }
        (CMD_TREE_CONNECT, false) => {
            sink.push(1, FieldKind::Bytes, "password");
            for name in ["path", "service"] {
                if sink.pos >= data_end {
                    break;
                }
                let s = nul_string_len(payload, sink.pos, data_end)
                    .ok_or_else(|| err("tree string", sink.pos))?;
                sink.push(s, FieldKind::Chars, name);
            }
        }
        (CMD_TREE_CONNECT, true) => {
            for name in ["service", "native_fs"] {
                if sink.pos >= data_end {
                    break;
                }
                let s = nul_string_len(payload, sink.pos, data_end)
                    .ok_or_else(|| err("tree string", sink.pos))?;
                sink.push(s, FieldKind::Chars, name);
            }
        }
        (CMD_READ_ANDX, false) => {}
        (CMD_READ_ANDX, true) => {
            if bc > 0 {
                sink.push(1, FieldKind::Padding, "pad");
                if bc > 1 {
                    sink.push(bc - 1, FieldKind::Chars, "file_data");
                }
            }
        }
        _ => unreachable!("rejected above"),
    }
    if sink.pos != payload.len() {
        return Err(err("data block fully consumed", sink.pos));
    }
    Ok(sink.fields)
}

/// Length (including terminator) of a NUL-terminated string starting at
/// `at` and ending no later than `end`.
fn nul_string_len(payload: &[u8], at: usize, end: usize) -> Option<usize> {
    payload[at..end].iter().position(|&b| b == 0).map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields_tile_payload;

    #[test]
    fn all_messages_dissect_and_tile() {
        let t = generate(120, 41);
        for (i, m) in t.iter().enumerate() {
            let fields = dissect(m.payload()).unwrap_or_else(|e| panic!("msg {i}: {e}"));
            assert!(fields_tile_payload(&fields, m.payload().len()), "msg {i}");
        }
    }

    #[test]
    fn signature_is_random_per_message() {
        let t = generate(20, 1);
        let sigs: std::collections::HashSet<Vec<u8>> =
            t.iter().map(|m| m.payload()[18..26].to_vec()).collect();
        assert_eq!(sigs.len(), 20);
    }

    #[test]
    fn negotiate_response_has_timestamp() {
        let t = generate(2, 2);
        let resp = &t.messages()[1];
        let fields = dissect(resp.payload()).unwrap();
        let ts = fields
            .iter()
            .find(|f| f.kind == FieldKind::Timestamp)
            .unwrap();
        assert_eq!(ts.len, 8);
        assert_eq!(ts.name, "system_time");
    }

    #[test]
    fn filetime_is_plausible() {
        // 2011-10-02 in FILETIME ticks is about 1.29e17.
        let ft = unix_to_filetime(1_317_513_600, 0);
        assert!(ft > 1.29e17 as u64 && ft < 1.31e17 as u64);
    }

    #[test]
    fn conversation_ids_are_consistent() {
        let t = generate(8, 3);
        let msgs = t.messages();
        let pid = &msgs[0].payload()[30..32];
        for m in msgs {
            assert_eq!(&m.payload()[30..32], pid);
        }
        // uid granted after session setup reply appears in later messages.
        let uid_later = &msgs[4].payload()[32..34];
        assert_ne!(uid_later, &[0, 0]);
    }

    #[test]
    fn rejects_corrupt_messages() {
        let t = generate(1, 4);
        let good = t.messages()[0].payload().to_vec();
        assert!(dissect(&good).is_ok());

        let mut bad_magic = good.clone();
        bad_magic[4] = 0x00;
        assert!(dissect(&bad_magic).is_err());

        let mut bad_nbss = good.clone();
        bad_nbss[3] = bad_nbss[3].wrapping_add(1);
        assert!(dissect(&bad_nbss).is_err());

        let mut truncated = good;
        truncated.truncate(30);
        assert!(dissect(&truncated).is_err());
    }

    #[test]
    fn tree_connect_path_is_chars() {
        let t = generate(5, 5);
        let req = &t.messages()[4];
        let fields = dissect(req.payload()).unwrap();
        let path = fields.iter().find(|f| f.name == "path").unwrap();
        assert_eq!(path.kind, FieldKind::Chars);
        let bytes = &req.payload()[path.range()];
        assert!(bytes.starts_with(b"\\\\FILESERVER\\"));
    }
}
