//! Generator × dissector cross-validation over all protocols.
//!
//! These tests play the role the Wireshark dissectors play in the paper:
//! every generated message must dissect, the fields must tile the payload
//! exactly, and mutations must be detected.

use proptest::prelude::*;
use protocols::{fields_tile_payload, Protocol, ProtocolSpec};

#[test]
fn every_protocol_every_message_tiles() {
    for p in Protocol::ALL {
        let t = p.generate(150, 99);
        assert_eq!(t.len(), 150);
        for (i, m) in t.iter().enumerate() {
            let fields = p
                .dissect(m.payload())
                .unwrap_or_else(|e| panic!("{p} msg {i}: {e}"));
            assert!(
                fields_tile_payload(&fields, m.payload().len()),
                "{p} msg {i}: fields do not tile"
            );
            // Fields are non-empty for non-empty payloads.
            assert!(!fields.is_empty());
        }
    }
}

#[test]
fn dissectors_reject_other_protocols() {
    // Each dissector must not accept messages of most other protocols —
    // they validate structure, not just length. (DNS/NBNS share RFC 1035
    // framing, so that pair legitimately cross-parses.)
    let traces: Vec<_> = Protocol::ALL
        .iter()
        .map(|p| (*p, p.generate(5, 7)))
        .collect();
    let compatible = |a: Protocol, b: Protocol| {
        matches!(
            (a, b),
            (Protocol::Dns, Protocol::Nbns) | (Protocol::Nbns, Protocol::Dns)
        )
    };
    for (pa, ta) in &traces {
        for (pb, _) in &traces {
            if pa == pb || compatible(*pa, *pb) {
                continue;
            }
            let rejected = ta
                .iter()
                .filter(|m| pb.dissect(m.payload()).is_err())
                .count();
            assert!(
                rejected * 2 >= ta.len(),
                "{pb} accepted too many {pa} messages"
            );
        }
    }
}

#[test]
fn flow_metadata_is_plausible() {
    for p in Protocol::ALL {
        let t = p.generate(60, 3);
        let mut last_ts = 0;
        for m in &t {
            assert!(m.timestamp_micros() > last_ts, "{p}: time must advance");
            last_ts = m.timestamp_micros();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        for p in [Protocol::Ntp, Protocol::Dns, Protocol::Au] {
            let a = p.generate(20, seed);
            let b = p.generate(20, seed);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn truncating_payload_fails_dissection(
        seed in any::<u64>(),
        cut in 1usize..8,
    ) {
        // Removing trailing bytes must not yield a silently-valid parse
        // for protocols with self-describing lengths. (DHCP is excluded:
        // shortening its trailing zero padding is still a valid message.)
        for p in [Protocol::Smb, Protocol::Au] {
            let t = p.generate(3, seed);
            let payload = t.messages()[0].payload();
            prop_assume!(payload.len() > cut);
            let truncated = &payload[..payload.len() - cut];
            prop_assert!(p.dissect(truncated).is_err(), "{} accepted truncation", p);
        }
    }
}
