//! Robustness fuzzing: dissectors and trace parsers must never panic on
//! arbitrary bytes — they return structured errors instead. For inputs
//! they do accept, the output invariants must hold.

use proptest::prelude::*;
use protocols::{fields_tile_payload, Protocol, ProtocolSpec};
use trace::{pcap, pcapng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dissectors_never_panic_on_random_bytes(
        payload in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        for p in Protocol::ALL {
            if let Ok(fields) = p.dissect(&payload) {
                prop_assert!(
                    fields_tile_payload(&fields, payload.len()),
                    "{p} accepted bytes but fields do not tile"
                );
            }
            // message_type must agree with dissect about validity.
            let _ = p.message_type(&payload);
        }
    }

    #[test]
    fn dissectors_never_panic_on_mutated_real_messages(
        seed in any::<u64>(),
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        for p in Protocol::ALL {
            let t = p.generate(3, seed);
            let mut payload = t.messages()[0].payload().to_vec();
            for &(pos, val) in &flips {
                let idx = pos % payload.len().max(1);
                if idx < payload.len() {
                    payload[idx] ^= val;
                }
            }
            if let Ok(fields) = p.dissect(&payload) {
                prop_assert!(fields_tile_payload(&fields, payload.len()));
            }
        }
    }

    #[test]
    fn pcap_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = pcap::read_from_slice(&bytes, "fuzz");
    }

    #[test]
    fn pcapng_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = pcapng::read_from_slice(&bytes, "fuzz");
        let _ = pcapng::read_any(&bytes, "fuzz");
    }

    #[test]
    fn truncating_valid_pcap_never_panics(seed in any::<u64>(), cut in 1usize..64) {
        let t = Protocol::Ntp.generate(3, seed);
        let img = pcap::write_to_vec(&t).unwrap();
        let end = img.len().saturating_sub(cut);
        let _ = pcap::read_from_slice(&img[..end], "fuzz");
        let ng = pcapng::write_to_vec(&t).unwrap();
        let end = ng.len().saturating_sub(cut);
        let _ = pcapng::read_from_slice(&ng[..end], "fuzz");
    }
}
