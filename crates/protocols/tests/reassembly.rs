//! Reassembly across crates: real generated SMB messages chopped into
//! TCP segments must come back byte-identical through the NBSS framer.

use bytes::Bytes;
use protocols::{Protocol, ProtocolSpec};
use trace::reassembly::{reassemble, NbssFramer};
use trace::{Message, Trace};

#[test]
fn smb_survives_segment_chopping() {
    let original = Protocol::Smb.generate(48, 77);
    // Chop each SMB message into raggedy TCP segments of 1-19 bytes.
    let mut segments = Vec::new();
    for (i, m) in original.iter().enumerate() {
        let payload = m.payload();
        let mut pos = 0;
        let mut part = 0u64;
        while pos < payload.len() {
            let take = 1 + (i * 7 + pos * 13) % 19;
            let end = (pos + take).min(payload.len());
            segments.push(
                Message::builder(Bytes::copy_from_slice(&payload[pos..end]))
                    .timestamp_micros(m.timestamp_micros() + part)
                    .source(m.source())
                    .destination(m.destination())
                    .transport(m.transport())
                    .direction(m.direction())
                    .build(),
            );
            pos = end;
            part += 1;
        }
    }
    let chopped = Trace::new("smb", segments);
    let (rebuilt, stats) = reassemble(&chopped, &NbssFramer);

    assert_eq!(rebuilt.len(), original.len());
    assert_eq!(stats.resync_bytes, 0);
    assert_eq!(stats.trailing_bytes, 0);

    // Match rebuilt messages back to originals per flow (order within a
    // flow is preserved; global order may interleave).
    let mut expected: std::collections::HashMap<_, Vec<&[u8]>> = Default::default();
    for m in &original {
        expected
            .entry((m.source(), m.destination()))
            .or_default()
            .push(&m.payload()[..]);
    }
    let mut got: std::collections::HashMap<_, Vec<&[u8]>> = Default::default();
    for m in &rebuilt {
        got.entry((m.source(), m.destination()))
            .or_default()
            .push(&m.payload()[..]);
    }
    assert_eq!(expected, got);

    // And every rebuilt message still dissects.
    for m in &rebuilt {
        Protocol::Smb
            .dissect(m.payload())
            .expect("reassembled SMB dissects");
    }
}
