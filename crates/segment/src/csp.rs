//! CSP: Contiguous Sequential Pattern segmentation (Goo et al., IEEE
//! Access 2019).
//!
//! CSP mines byte strings that occur contiguously in a large fraction of
//! messages (an Apriori-style level-wise search) and treats them as the
//! static skeleton of the protocol: every maximal pattern match becomes a
//! static field candidate, the bytes between matches become dynamic field
//! candidates. CSP depends on value variance across the trace — with few
//! messages most patterns fall below support, which is why the paper
//! finds it "best applied to large traces" (§IV-C).
//!
//! The [`WorkBudget`] bounds the pattern store: the mining keeps a
//! per-pattern list of supporting messages (as Goo et al.'s sequence
//! extraction does), so memory grows with *patterns × message support*.
//! Pattern-dense large traces — AWDL's highly constant frames across 768
//! messages — blow this store up, reproducing the paper's failing
//! AWDL run while the 100-message AWDL trace still fits.

use crate::{MessageSegments, SegmentError, Segmenter, TraceSegmentation, WorkBudget};
use std::collections::{HashMap, HashSet};
use trace::Trace;

/// The CSP segmenter.
#[derive(Debug, Clone, PartialEq)]
pub struct Csp {
    /// Minimum fraction of messages a pattern must occur in.
    pub min_support: f64,
    /// Longest pattern length mined.
    pub max_pattern_len: usize,
    /// Shortest pattern length used for matching.
    pub min_pattern_len: usize,
    /// Budget on the pattern store, in occurrence-list entries
    /// (pattern × supporting message).
    pub budget: WorkBudget,
}

impl Default for Csp {
    fn default() -> Self {
        Self {
            min_support: 0.3,
            max_pattern_len: 48,
            min_pattern_len: 2,
            budget: WorkBudget::new(750_000),
        }
    }
}

impl Segmenter for Csp {
    fn name(&self) -> &'static str {
        "csp"
    }

    fn cache_fingerprint(&self) -> String {
        format!(
            "csp:sup={:016x}:maxlen={}:minlen={}:budget={}",
            self.min_support.to_bits(),
            self.max_pattern_len,
            self.min_pattern_len,
            self.budget.units
        )
    }

    fn segment_trace(&self, trace: &Trace) -> Result<TraceSegmentation, SegmentError> {
        let payloads: Vec<&[u8]> = trace.iter().map(|m| &m.payload()[..]).collect();
        let patterns = self.mine_patterns(&payloads)?;
        let by_len = index_by_length(&patterns);
        let messages = payloads
            .iter()
            .map(|p| self.segment_message(p, &by_len))
            .collect();
        Ok(TraceSegmentation { messages })
    }
}

impl Csp {
    /// Level-wise mining of frequent contiguous byte patterns.
    fn mine_patterns(&self, payloads: &[&[u8]]) -> Result<HashSet<Vec<u8>>, SegmentError> {
        let n = payloads.len();
        if n == 0 {
            return Ok(HashSet::new());
        }
        let min_count = ((self.min_support * n as f64).ceil() as usize).max(2);
        let mut all: HashSet<Vec<u8>> = HashSet::new();
        let mut frequent_prev: HashSet<Vec<u8>> = HashSet::new();
        // Occurrence-list entries held across all levels: one entry per
        // (frequent pattern, supporting message) pair.
        let mut store_entries: u64 = 0;

        for k in 1..=self.max_pattern_len {
            // Count message support of each k-gram whose (k-1)-prefix and
            // suffix were frequent (Apriori pruning).
            let mut counts: HashMap<&[u8], usize> = HashMap::new();
            for &p in payloads {
                if p.len() < k {
                    continue;
                }
                let mut seen: HashSet<&[u8]> = HashSet::new();
                for w in p.windows(k) {
                    if k > 1
                        && (!frequent_prev.contains(&w[..k - 1])
                            || !frequent_prev.contains(&w[1..]))
                    {
                        continue;
                    }
                    if seen.insert(w) {
                        *counts.entry(w).or_insert(0) += 1;
                    }
                }
            }
            let mut frequent: HashSet<Vec<u8>> = HashSet::new();
            for (w, c) in counts {
                if c >= min_count {
                    store_entries += c as u64;
                    frequent.insert(w.to_vec());
                }
            }
            if frequent.is_empty() {
                break;
            }
            self.budget.check("csp", store_entries)?;
            if k >= self.min_pattern_len {
                all.extend(frequent.iter().cloned());
            }
            frequent_prev = frequent;
        }
        Ok(all)
    }

    /// Greedy longest-match segmentation of one message: pattern matches
    /// become static segments, the bytes in between dynamic segments.
    fn segment_message(
        &self,
        payload: &[u8],
        by_len: &[(usize, HashSet<&[u8]>)],
    ) -> MessageSegments {
        let n = payload.len();
        if n == 0 {
            return MessageSegments::from_cuts(0, &[]);
        }
        let mut ranges = Vec::new();
        let mut dyn_start = 0usize;
        let mut pos = 0usize;
        while pos < n {
            let mut matched = 0usize;
            for (len, set) in by_len {
                if pos + len <= n && set.contains(&payload[pos..pos + len]) {
                    matched = *len;
                    break; // lengths are sorted descending: longest first
                }
            }
            if matched > 0 {
                if dyn_start < pos {
                    ranges.push(dyn_start..pos);
                }
                ranges.push(pos..pos + matched);
                pos += matched;
                dyn_start = pos;
            } else {
                pos += 1;
            }
        }
        if dyn_start < n {
            ranges.push(dyn_start..n);
        }
        MessageSegments::from_ranges(n, ranges)
    }
}

/// Groups patterns by length, longest first, for greedy matching.
fn index_by_length(patterns: &HashSet<Vec<u8>>) -> Vec<(usize, HashSet<&[u8]>)> {
    let mut by_len: HashMap<usize, HashSet<&[u8]>> = HashMap::new();
    for p in patterns {
        by_len.entry(p.len()).or_default().insert(&p[..]);
    }
    let mut out: Vec<(usize, HashSet<&[u8]>)> = by_len.into_iter().collect();
    out.sort_by_key(|e| std::cmp::Reverse(e.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use trace::Message;

    fn mk_trace(payloads: &[Vec<u8>]) -> Trace {
        Trace::new(
            "t",
            payloads
                .iter()
                .map(|p| Message::builder(Bytes::copy_from_slice(p)).build())
                .collect(),
        )
    }

    /// Messages with a shared 4-byte magic, a random id and a shared
    /// trailer.
    fn structured(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let mut p = b"MAGC".to_vec();
                p.extend_from_slice(&(i as u32).wrapping_mul(2_654_435_761).to_be_bytes());
                p.extend_from_slice(b"TAIL");
                p
            })
            .collect()
    }

    #[test]
    fn finds_static_skeleton() {
        let t = mk_trace(&structured(50));
        let seg = Csp::default().segment_trace(&t).unwrap();
        for (s, m) in seg.messages.iter().zip(t.iter()) {
            let total: usize = s.ranges().iter().map(|r| r.len()).sum();
            assert_eq!(total, m.payload().len());
            // Expect cuts isolating the id: MAGC | id | TAIL.
            assert!(s.cuts().contains(&4), "cuts: {:?}", s.cuts());
            assert!(s.cuts().contains(&8), "cuts: {:?}", s.cuts());
        }
    }

    #[test]
    fn no_patterns_means_single_segment() {
        // Fully random payloads share no frequent patterns.
        let payloads: Vec<Vec<u8>> = (0..30u64)
            .map(|i| {
                (0..16u64)
                    .map(|j| ((i * 7 + j * 13).wrapping_mul(2_654_435_761) >> 24) as u8)
                    .collect()
            })
            .collect();
        let t = mk_trace(&payloads);
        let seg = Csp::default().segment_trace(&t).unwrap();
        for s in &seg.messages {
            assert!(
                s.len() <= 3,
                "random payloads should barely split: {:?}",
                s.ranges()
            );
        }
    }

    #[test]
    fn budget_exceeded_on_pattern_dense_trace() {
        // Every message identical and long: every substring is frequent.
        let payloads: Vec<Vec<u8>> = (0..20).map(|_| (0..=200u8).collect::<Vec<u8>>()).collect();
        let t = mk_trace(&payloads);
        let tight = Csp {
            budget: WorkBudget::new(500),
            ..Csp::default()
        };
        let err = tight.segment_trace(&t).unwrap_err();
        assert!(matches!(
            err,
            SegmentError::BudgetExceeded {
                segmenter: "csp",
                ..
            }
        ));
    }

    #[test]
    fn small_traces_yield_fewer_patterns() {
        let large = mk_trace(&structured(60));
        let small = mk_trace(&structured(4));
        let seg_large = Csp::default().segment_trace(&large).unwrap();
        let seg_small = Csp::default().segment_trace(&small).unwrap();
        // With only 4 messages, support counting is much weaker.
        assert!(seg_small.total_segments() <= seg_large.total_segments());
    }

    #[test]
    fn empty_inputs() {
        let t = mk_trace(&[]);
        assert!(Csp::default()
            .segment_trace(&t)
            .unwrap()
            .messages
            .is_empty());
        let t2 = mk_trace(&[vec![], vec![1, 2, 3]]);
        let seg = Csp::default().segment_trace(&t2).unwrap();
        assert!(seg.messages[0].is_empty());
        assert_eq!(seg.messages[1].len(), 1);
    }

    #[test]
    fn apriori_pruning_matches_bruteforce_support() {
        // Every pattern reported must really occur in >= min_support of
        // the messages.
        let payloads = structured(40);
        let refs: Vec<&[u8]> = payloads.iter().map(|p| &p[..]).collect();
        let csp = Csp::default();
        let patterns = csp.mine_patterns(&refs).unwrap();
        let min_count = ((csp.min_support * refs.len() as f64).ceil() as usize).max(2);
        for p in &patterns {
            let support = refs
                .iter()
                .filter(|m| m.windows(p.len()).any(|w| w == &p[..]))
                .count();
            assert!(support >= min_count, "pattern {p:02x?} support {support}");
        }
    }
}
