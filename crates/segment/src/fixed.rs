//! Fixed-width chunking: the trivial baseline segmenter.
//!
//! N-gram-based approaches (FieldHunter's candidates, many early PRE
//! tools) implicitly segment messages into fixed-width chunks. This
//! segmenter makes that baseline explicit so it can be compared against
//! the content-aware heuristics — and gives users a fallback when no
//! heuristic fits their protocol.

use crate::{MessageSegments, SegmentError, Segmenter, TraceSegmentation};
use trace::Trace;

/// Splits every message into fixed-width chunks (the final chunk keeps
/// the remainder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedChunks {
    /// Chunk width in bytes (≥ 1).
    pub width: usize,
}

impl Default for FixedChunks {
    fn default() -> Self {
        Self { width: 4 }
    }
}

impl Segmenter for FixedChunks {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn cache_fingerprint(&self) -> String {
        format!("fixed:w={}", self.width)
    }

    fn segment_trace(&self, trace: &Trace) -> Result<TraceSegmentation, SegmentError> {
        let width = self.width.max(1);
        let messages = trace
            .iter()
            .map(|m| {
                let len = m.payload().len();
                let cuts: Vec<usize> = (1..len.div_ceil(width)).map(|i| i * width).collect();
                MessageSegments::from_cuts(len, &cuts)
            })
            .collect();
        Ok(TraceSegmentation { messages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use trace::Message;

    fn mk_trace(payloads: &[&[u8]]) -> Trace {
        Trace::new(
            "t",
            payloads
                .iter()
                .map(|p| Message::builder(Bytes::copy_from_slice(p)).build())
                .collect(),
        )
    }

    #[test]
    fn even_division() {
        let t = mk_trace(&[b"abcdefgh"]);
        let seg = FixedChunks { width: 4 }.segment_trace(&t).unwrap();
        assert_eq!(seg.messages[0].ranges(), &[0..4, 4..8]);
    }

    #[test]
    fn remainder_kept_in_last_chunk() {
        let t = mk_trace(&[b"abcdefghij"]);
        let seg = FixedChunks { width: 4 }.segment_trace(&t).unwrap();
        assert_eq!(seg.messages[0].ranges(), &[0..4, 4..8, 8..10]);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // the whole message as a single chunk
    fn width_larger_than_message() {
        let t = mk_trace(&[b"ab"]);
        let seg = FixedChunks { width: 16 }.segment_trace(&t).unwrap();
        assert_eq!(seg.messages[0].ranges(), &[0..2]);
    }

    #[test]
    fn zero_width_is_clamped() {
        let t = mk_trace(&[b"abc"]);
        let seg = FixedChunks { width: 0 }.segment_trace(&t).unwrap();
        assert_eq!(seg.messages[0].len(), 3);
    }

    #[test]
    fn empty_messages() {
        let t = mk_trace(&[b""]);
        let seg = FixedChunks::default().segment_trace(&t).unwrap();
        assert!(seg.messages[0].is_empty());
    }
}
