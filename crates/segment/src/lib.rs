#![warn(missing_docs)]
//! Heuristic message segmenters for unknown binary protocols.
//!
//! Field data type clustering needs message *segments* — field candidates
//! — as input (paper §III-B). For unknown protocols no dissector exists,
//! so boundaries must be approximated heuristically. This crate
//! re-implements the three segmenters the paper evaluates:
//!
//! * [`nemesys`] — NEMESYS (Kleber et al., WOOT 2018): statistical
//!   analysis of the bit congruence between consecutive bytes,
//! * [`netzob`] — Netzob-style (Bossert et al., AsiaCCS 2014): sequence
//!   alignment of similar messages, static/dynamic column classification,
//! * [`csp`] — CSP (Goo et al., IEEE Access 2019): frequency analysis of
//!   contiguous byte-string patterns.
//!
//! Netzob and CSP carry a [`WorkBudget`]: the paper reports four analysis
//! runs failing "due to exceeding runtime or memory constraints", and the
//! budget reproduces that behaviour deterministically instead of hanging
//! for hours (DESIGN.md §4.4).
//!
//! # Examples
//!
//! ```
//! use segment::{Segmenter, nemesys::Nemesys};
//! use trace::Trace;
//! use bytes::Bytes;
//!
//! let msg = trace::Message::builder(Bytes::from_static(
//!     b"\x01\x00\x00\x00AAAAhostname\x00\xff\x3a\x91\x07",
//! )).build();
//! let trace = Trace::new("demo", vec![msg]);
//! let seg = Nemesys::default().segment_trace(&trace)?;
//! // Segments tile the message.
//! let total: usize = seg.messages[0].ranges().iter().map(|r| r.len()).sum();
//! assert_eq!(total, 21);
//! # Ok::<(), segment::SegmentError>(())
//! ```

pub mod csp;
pub mod fixed;
pub mod nemesys;
pub mod netzob;

use std::ops::Range;
use trace::Trace;

/// The segments of one message: byte ranges that tile the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSegments {
    ranges: Vec<Range<usize>>,
}

impl MessageSegments {
    /// Builds a tiling from ascending cut offsets (excluding 0 and the
    /// payload length).
    ///
    /// # Panics
    ///
    /// Panics if cuts are not strictly ascending within `(0, len)`.
    pub fn from_cuts(len: usize, cuts: &[usize]) -> Self {
        let mut ranges = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0;
        for &c in cuts {
            assert!(
                c > start && c < len,
                "cuts must be strictly ascending inside the payload"
            );
            ranges.push(start..c);
            start = c;
        }
        if len > 0 {
            ranges.push(start..len);
        }
        Self { ranges }
    }

    /// Builds a tiling directly from ranges.
    ///
    /// # Panics
    ///
    /// Panics if the ranges do not tile `[0, len)` in order.
    pub fn from_ranges(len: usize, ranges: Vec<Range<usize>>) -> Self {
        let mut cursor = 0;
        for r in &ranges {
            assert_eq!(r.start, cursor, "ranges must tile without gaps");
            assert!(r.end > r.start, "ranges must be non-empty");
            cursor = r.end;
        }
        assert_eq!(cursor, len, "ranges must cover the payload");
        Self { ranges }
    }

    /// The segment ranges in offset order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the message had zero bytes.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The cut offsets (excluding 0 and the payload length).
    pub fn cuts(&self) -> Vec<usize> {
        self.ranges.iter().skip(1).map(|r| r.start).collect()
    }
}

/// Segmentation of a whole trace, message by message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSegmentation {
    /// Per-message segments, parallel to the trace's messages.
    pub messages: Vec<MessageSegments>,
}

impl TraceSegmentation {
    /// Total number of segments across all messages.
    pub fn total_segments(&self) -> usize {
        self.messages.iter().map(MessageSegments::len).sum()
    }
}

/// Error from a segmenter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// The run exceeded its [`WorkBudget`] — the deterministic stand-in
    /// for the paper's "fails due to exceeding runtime or memory
    /// constraints".
    BudgetExceeded {
        /// Which segmenter gave up.
        segmenter: &'static str,
        /// Work units the run would have needed (estimated or spent).
        needed: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::BudgetExceeded {
                segmenter,
                needed,
                budget,
            } => write!(
                f,
                "{segmenter} exceeded its work budget ({needed} > {budget} units)"
            ),
        }
    }
}

impl std::error::Error for SegmentError {}

/// A heuristic message segmenter.
pub trait Segmenter {
    /// Canonical lowercase name (used in result tables).
    fn name(&self) -> &'static str;

    /// A stable fingerprint of the full configuration, used by artifact
    /// caches to key stored segmentations. Implementations must fold in
    /// every parameter that can change the produced cuts (float
    /// parameters by bit pattern); the name-only default is correct
    /// only for parameterless segmenters.
    fn cache_fingerprint(&self) -> String {
        self.name().to_string()
    }

    /// Segments every message of the trace.
    ///
    /// # Errors
    ///
    /// Returns [`SegmentError::BudgetExceeded`] when the trace is too
    /// expensive for the segmenter's work budget.
    fn segment_trace(&self, trace: &Trace) -> Result<TraceSegmentation, SegmentError>;
}

/// An explicit work budget, standing in for the paper's runtime/memory
/// limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkBudget {
    /// Maximum abstract work units (segmenter-specific).
    pub units: u64,
}

impl WorkBudget {
    /// A budget of `units` work units.
    pub fn new(units: u64) -> Self {
        Self { units }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        Self { units: u64::MAX }
    }

    /// Checks an estimated cost against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`SegmentError::BudgetExceeded`] if `needed` exceeds the
    /// budget.
    pub fn check(&self, segmenter: &'static str, needed: u64) -> Result<(), SegmentError> {
        if needed > self.units {
            Err(SegmentError::BudgetExceeded {
                segmenter,
                needed,
                budget: self.units,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cuts_builds_tiling() {
        let s = MessageSegments::from_cuts(10, &[3, 7]);
        assert_eq!(s.ranges(), &[0..3, 3..7, 7..10]);
        assert_eq!(s.cuts(), vec![3, 7]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // one whole-message segment IS a one-range list
    fn from_cuts_no_cuts_is_one_segment() {
        let s = MessageSegments::from_cuts(5, &[]);
        assert_eq!(s.ranges(), &[0..5]);
    }

    #[test]
    fn empty_message_has_no_segments() {
        let s = MessageSegments::from_cuts(0, &[]);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_cuts_rejects_out_of_range() {
        MessageSegments::from_cuts(5, &[5]);
    }

    #[test]
    #[should_panic(expected = "tile without gaps")]
    fn from_ranges_rejects_gaps() {
        MessageSegments::from_ranges(6, vec![0..2, 3..6]);
    }

    #[test]
    fn budget_check() {
        let b = WorkBudget::new(100);
        assert!(b.check("x", 100).is_ok());
        let err = b.check("x", 101).unwrap_err();
        assert!(matches!(
            err,
            SegmentError::BudgetExceeded {
                needed: 101,
                budget: 100,
                ..
            }
        ));
        assert!(WorkBudget::unlimited().check("x", u64::MAX).is_ok());
    }
}
