//! NEMESYS: Network Message Syntax analysis (Kleber et al., WOOT 2018).
//!
//! NEMESYS approximates field boundaries from the *intrinsic structure*
//! of each message, one message at a time: the bit congruence of
//! consecutive bytes measures how similar neighboring bytes are; its
//! delta changes sharply where a field of one kind ends and another
//! begins. Boundaries are placed at the maximum rise of the smoothed
//! delta following each of its local minima, then refined by merging
//! consecutive printable-character segments.

use crate::{MessageSegments, SegmentError, Segmenter, TraceSegmentation};
use mathkit::smooth::{delta, gaussian_filter, local_minima};
use trace::Trace;

/// The NEMESYS segmenter.
///
/// `sigma` is the Gaussian smoothing radius for the bit-congruence delta
/// (the WOOT paper uses 0.6); `merge_chars` enables the printable-
/// character merge refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct Nemesys {
    /// Gaussian smoothing σ for the ΔBC signal.
    pub sigma: f64,
    /// Merge runs of consecutive printable-character segments.
    pub merge_chars: bool,
    /// Isolate runs of at least this many zero bytes as their own
    /// segments (0 disables). Zero fill delimits fields in most binary
    /// protocols; the WOOT paper's refinements separate null sequences
    /// the same way.
    pub zero_run_min: usize,
}

impl Default for Nemesys {
    fn default() -> Self {
        Self {
            sigma: 0.6,
            merge_chars: true,
            zero_run_min: 2,
        }
    }
}

impl Segmenter for Nemesys {
    fn name(&self) -> &'static str {
        "nemesys"
    }

    fn cache_fingerprint(&self) -> String {
        format!(
            "nemesys:sigma={:016x}:merge={}:zrm={}",
            self.sigma.to_bits(),
            self.merge_chars,
            self.zero_run_min
        )
    }

    fn segment_trace(&self, trace: &Trace) -> Result<TraceSegmentation, SegmentError> {
        // NEMESYS is linear in the trace size; it never exceeds a budget.
        let messages = trace
            .iter()
            .map(|m| self.segment_message(m.payload()))
            .collect();
        Ok(TraceSegmentation { messages })
    }
}

impl Nemesys {
    /// Segments a single message payload.
    pub fn segment_message(&self, payload: &[u8]) -> MessageSegments {
        let n = payload.len();
        if n < 3 {
            return MessageSegments::from_cuts(n, &[]);
        }
        // Bit congruence of consecutive byte pairs: bc[i] for (i, i+1).
        let bc: Vec<f64> = payload
            .windows(2)
            .map(|w| f64::from(8 - (w[0] ^ w[1]).count_ones()) / 8.0)
            .collect();
        // Delta of the bit congruence: dbc[i] = bc[i+1] - bc[i],
        // describing the *change* in byte similarity around byte i+1.
        let dbc = delta(&bc);
        if dbc.is_empty() {
            return MessageSegments::from_cuts(n, &[]);
        }
        let smoothed = gaussian_filter(&dbc, self.sigma);

        // A field boundary is expected where the smoothed delta rises the
        // most after a local minimum: the minimum marks the interior of a
        // homogeneous field, the steepest rise marks the transition.
        let mut cuts = Vec::new();
        for min_idx in local_minima(&smoothed) {
            // Walk right until the smoothed delta stops rising.
            let mut steepest = min_idx;
            let mut best_rise = 0.0;
            let mut t = min_idx;
            while t + 1 < smoothed.len() && smoothed[t + 1] >= smoothed[t] {
                let rise = smoothed[t + 1] - smoothed[t];
                if rise > best_rise {
                    best_rise = rise;
                    steepest = t + 1;
                }
                t += 1;
            }
            if best_rise > 0.0 {
                // dbc index t describes the transition at byte t+1; the
                // cut goes before that byte.
                let cut = steepest + 1;
                if cut > 0 && cut < n {
                    cuts.push(cut);
                }
            }
        }
        cuts.sort_unstable();
        cuts.dedup();

        if self.zero_run_min > 0 {
            apply_zero_run_cuts(payload, &mut cuts, self.zero_run_min);
        }
        let mut segments = MessageSegments::from_cuts(n, &cuts);
        if self.merge_chars {
            segments = merge_char_segments(payload, &segments);
        }
        segments
    }
}

/// Replaces the cuts inside every maximal zero run of at least `min_run`
/// bytes with cuts at the run's boundaries, so zero fill forms clean
/// segments instead of fragments glued to neighboring values.
fn apply_zero_run_cuts(payload: &[u8], cuts: &mut Vec<usize>, min_run: usize) {
    let n = payload.len();
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start = None;
    for (i, &b) in payload.iter().enumerate() {
        match (b == 0, start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                if i - s >= min_run {
                    runs.push((s, i));
                }
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        if n - s >= min_run {
            runs.push((s, n));
        }
    }
    if runs.is_empty() {
        return;
    }
    cuts.retain(|&c| !runs.iter().any(|&(s, e)| c > s && c < e));
    for (s, e) in runs {
        if s > 0 {
            cuts.push(s);
        }
        if e < n {
            cuts.push(e);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
}

/// Merges runs of consecutive segments that consist entirely of printable
/// characters (the WOOT paper's char-sequence refinement): heuristically
/// split text such as hostnames or paths is re-joined into one segment.
fn merge_char_segments(payload: &[u8], segments: &MessageSegments) -> MessageSegments {
    let is_char_segment = |r: &std::ops::Range<usize>| -> bool {
        r.len() >= 2 && payload[r.clone()].iter().all(|&b| is_printable(b))
    };
    let mut merged: Vec<std::ops::Range<usize>> = Vec::with_capacity(segments.len());
    for r in segments.ranges() {
        if let Some(last) = merged.last_mut() {
            if is_char_segment(last) && is_char_segment(r) {
                *last = last.start..r.end;
                continue;
            }
        }
        merged.push(r.clone());
    }
    MessageSegments::from_ranges(payload.len(), merged)
}

fn is_printable(b: u8) -> bool {
    (0x20..0x7F).contains(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use trace::Message;

    fn segments_of(payload: &[u8]) -> MessageSegments {
        Nemesys::default().segment_message(payload)
    }

    #[test]
    fn tiles_any_payload() {
        for payload in [
            &b""[..],
            &b"\x01"[..],
            &b"\x01\x02"[..],
            &b"\x00\x00\x00\x00\xff\xff\xff\xff"[..],
            &b"The quick brown fox\x00\x12\x34\x56\x78"[..],
        ] {
            let s = segments_of(payload);
            let total: usize = s.ranges().iter().map(|r| r.len()).sum();
            assert_eq!(total, payload.len());
        }
    }

    #[test]
    fn splits_structure_change() {
        // Eight zero bytes followed by eight high-entropy bytes: the
        // boundary should fall near offset 8.
        let payload = b"\x00\x00\x00\x00\x00\x00\x00\x00\xa7\x3c\x91\x5e\x2b\xd8\x44\xf0";
        let s = segments_of(payload);
        assert!(s.len() >= 2, "expected a split, got {:?}", s.ranges());
        assert!(
            s.cuts().iter().any(|&c| (6..=10).contains(&c)),
            "no cut near the structure change: {:?}",
            s.cuts()
        );
    }

    #[test]
    fn merges_printable_runs() {
        // A long ASCII hostname must come out as one segment even if the
        // bit-congruence heuristic would split it.
        let mut payload = Vec::new();
        payload.extend_from_slice(&[0x00, 0x00, 0x00, 0x00]);
        payload.extend_from_slice(b"workstation-fileserver-printer");
        payload.extend_from_slice(&[0xD2, 0x3D, 0x19, 0x03]);
        let s = segments_of(&payload);
        let char_segments: Vec<_> = s
            .ranges()
            .iter()
            .filter(|r| {
                payload[(*r).clone()]
                    .iter()
                    .all(|&b| super::is_printable(b))
                    && r.len() >= 2
            })
            .collect();
        assert_eq!(char_segments.len(), 1, "got {:?}", s.ranges());
        assert!(char_segments[0].len() >= 25, "got {:?}", char_segments);
    }

    #[test]
    fn without_merge_chars_keeps_raw_cuts() {
        let payload = b"\x00\x00\x00\x00hostname-hostname\x00\x00";
        let raw = Nemesys {
            merge_chars: false,
            ..Nemesys::default()
        };
        let merged = Nemesys::default();
        assert!(raw.segment_message(payload).len() >= merged.segment_message(payload).len());
    }

    #[test]
    fn segment_trace_covers_all_messages() {
        let msgs = vec![
            Message::builder(Bytes::from_static(b"\x01\x02\x03\x04\x05\x06")).build(),
            Message::builder(Bytes::from_static(b"")).build(),
            Message::builder(Bytes::from_static(b"abcdef\x00\x01\x02")).build(),
        ];
        let t = Trace::new("t", msgs);
        let seg = Nemesys::default().segment_trace(&t).unwrap();
        assert_eq!(seg.messages.len(), 3);
        assert!(seg.messages[1].is_empty());
    }

    #[test]
    fn zero_runs_become_clean_segments() {
        // value | zero fill | value: the zero run must come out as one
        // segment with exact boundaries.
        let mut payload = vec![0x41, 0x87, 0x93];
        payload.extend_from_slice(&[0u8; 12]);
        payload.extend_from_slice(&[0xD2, 0x3D, 0x19, 0x55]);
        let s = segments_of(&payload);
        assert!(
            s.ranges().contains(&(3..15)),
            "zero run not isolated: {:?}",
            s.ranges()
        );
    }

    #[test]
    fn zero_run_refinement_can_be_disabled() {
        let payload = [0x41, 0x87, 0x93, 0, 0, 0, 0, 0, 0, 0xD2, 0x3D];
        let off = Nemesys {
            zero_run_min: 0,
            ..Nemesys::default()
        };
        // With the refinement off the zero run may be glued to neighbors;
        // the tiling invariant still holds.
        let s = off.segment_message(&payload);
        let total: usize = s.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(total, payload.len());
    }

    #[test]
    fn constant_payload_stays_whole() {
        let payload = [0xAAu8; 32];
        let s = segments_of(&payload);
        assert_eq!(s.len(), 1, "constant bytes have no structure change");
    }
}
