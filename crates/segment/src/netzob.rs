//! Netzob-style segmentation (Bossert et al., AsiaCCS 2014): sequence
//! alignment of similar messages, then static/dynamic column
//! classification.
//!
//! Netzob aligns messages with Needleman–Wunsch, groups similar messages,
//! and derives fields from the aligned columns: runs of columns whose
//! byte is constant across the group become static fields, runs of
//! varying columns become dynamic fields. Alignment cost is quadratic in
//! message length and in the trace size — the paper observes Netzob
//! failing on large traces of DHCP and SMB and on AU "due to the
//! exponential increase in runtime". The [`WorkBudget`] reproduces that
//! failure mode deterministically: the quadratic cell count is estimated
//! up front and the run aborts if it exceeds the budget.
//!
//! Differences from the original (documented substitutions): grouping
//! uses single-linkage components over the normalized alignment score
//! instead of UPGMA, and the multiple alignment is a star alignment
//! against the longest group member.

use crate::{MessageSegments, SegmentError, Segmenter, TraceSegmentation, WorkBudget};
use trace::Trace;

/// The Netzob-style segmenter.
#[derive(Debug, Clone, PartialEq)]
pub struct Netzob {
    /// Minimum normalized alignment similarity (matched bytes over the
    /// longer length) for two messages to share a group.
    pub similarity_threshold: f64,
    /// Work budget in Needleman–Wunsch cells.
    pub budget: WorkBudget,
}

impl Default for Netzob {
    fn default() -> Self {
        Self {
            similarity_threshold: 0.6,
            // Calibrated so the paper's failing traces (DHCP-1000,
            // SMB-1000, AU — all above 7 gigacells) abort while the
            // passing ones (AWDL-768 at ~6.5 gigacells and below) run.
            budget: WorkBudget::new(6_800_000_000),
        }
    }
}

impl Segmenter for Netzob {
    fn name(&self) -> &'static str {
        "netzob"
    }

    fn cache_fingerprint(&self) -> String {
        format!(
            "netzob:sim={:016x}:budget={}",
            self.similarity_threshold.to_bits(),
            self.budget.units
        )
    }

    fn segment_trace(&self, trace: &Trace) -> Result<TraceSegmentation, SegmentError> {
        let lens: Vec<u64> = trace.iter().map(|m| m.payload().len() as u64).collect();
        // Estimated pairwise alignment cost (the dominant term).
        let total: u64 = lens.iter().sum();
        let sum_sq: u64 = lens.iter().map(|&l| l * l).sum();
        let estimated = (total * total - sum_sq) / 2;
        self.budget.check(self.name(), estimated)?;

        let n = trace.len();
        if n == 0 {
            return Ok(TraceSegmentation {
                messages: Vec::new(),
            });
        }
        let payloads: Vec<&[u8]> = trace.iter().map(|m| &m.payload()[..]).collect();

        // Group by single-linkage over normalized alignment similarity.
        let mut parent: Vec<usize> = (0..n).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                if find(&mut parent, i) == find(&mut parent, j) {
                    continue;
                }
                let longer = payloads[i].len().max(payloads[j].len());
                if longer == 0 {
                    union(&mut parent, i, j);
                    continue;
                }
                let matches = alignment_matches(payloads[i], payloads[j]);
                if matches as f64 / longer as f64 >= self.similarity_threshold {
                    union(&mut parent, i, j);
                }
            }
        }
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(i);
        }

        let mut out: Vec<Option<MessageSegments>> = vec![None; n];
        for members in groups.values() {
            segment_group(&payloads, members, &mut out);
        }
        Ok(TraceSegmentation {
            messages: out
                .into_iter()
                .map(|s| s.expect("every message belongs to exactly one group"))
                .collect(),
        })
    }
}

/// Star-aligns a group against its longest member and cuts every member
/// at the static/dynamic class changes of the aligned columns.
fn segment_group(payloads: &[&[u8]], members: &[usize], out: &mut [Option<MessageSegments>]) {
    let rep = *members
        .iter()
        .max_by_key(|&&i| payloads[i].len())
        .expect("groups are non-empty");
    let rep_payload = payloads[rep];
    let rep_len = rep_payload.len();
    if rep_len == 0 {
        for &m in members {
            out[m] = Some(MessageSegments::from_cuts(payloads[m].len(), &[]));
        }
        return;
    }

    // For each member: the member offset aligned at the *start* of each
    // representative column (length rep_len + 1, monotone).
    let mut col_offsets: Vec<Vec<usize>> = Vec::with_capacity(members.len());
    // Column is static while every member byte aligned to it matches the
    // representative byte.
    let mut is_static = vec![true; rep_len];

    for &m in members {
        let offsets = align_offsets(rep_payload, payloads[m]);
        for c in 0..rep_len {
            let (a, b) = (offsets[c], offsets[c + 1]);
            // Exactly one member byte aligned and equal -> still static.
            if !(b == a + 1 && payloads[m][a] == rep_payload[c]) {
                is_static[c] = false;
            }
        }
        col_offsets.push(offsets);
    }

    // Boundaries where the column class flips.
    let mut class_cuts = Vec::new();
    for c in 1..rep_len {
        if is_static[c] != is_static[c - 1] {
            class_cuts.push(c);
        }
    }

    for (k, &m) in members.iter().enumerate() {
        let len = payloads[m].len();
        let mut cuts: Vec<usize> = class_cuts
            .iter()
            .map(|&c| col_offsets[k][c])
            .filter(|&o| o > 0 && o < len)
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        out[m] = Some(MessageSegments::from_cuts(len, &cuts));
    }
}

/// Number of matched bytes in the optimal global alignment (match = 1,
/// mismatch/gap = 0), i.e. the length of the longest common subsequence.
fn alignment_matches(a: &[u8], b: &[u8]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut prev = vec![0usize; short.len() + 1];
    let mut cur = vec![0usize; short.len() + 1];
    for &lb in long {
        for (j, &sb) in short.iter().enumerate() {
            cur[j + 1] = if lb == sb {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Aligns `member` to `rep` and returns, for each representative column
/// start (0..=rep.len()), the member offset aligned there. Member bytes
/// that fall between representative columns (insertions) attach to the
/// column on their right.
fn align_offsets(rep: &[u8], member: &[u8]) -> Vec<usize> {
    let (n, m) = (rep.len(), member.len());
    // Full DP with traceback; groups are small enough after the global
    // budget check.
    let width = m + 1;
    let mut score = vec![0u32; (n + 1) * width];
    for i in 1..=n {
        for j in 1..=m {
            let diag = score[(i - 1) * width + (j - 1)] + u32::from(rep[i - 1] == member[j - 1]);
            let up = score[(i - 1) * width + j];
            let left = score[i * width + (j - 1)];
            score[i * width + j] = diag.max(up).max(left);
        }
    }
    // Traceback, collecting for each rep index the member offset at its
    // start.
    let mut offsets = vec![0usize; n + 1];
    let (mut i, mut j) = (n, m);
    offsets[n] = m;
    while i > 0 {
        let cur = score[i * width + j];
        if j > 0 && score[i * width + (j - 1)] == cur {
            j -= 1; // insertion in member: attach to the right column
        } else if j > 0
            && score[(i - 1) * width + (j - 1)] + u32::from(rep[i - 1] == member[j - 1]) == cur
        {
            i -= 1;
            j -= 1;
            offsets[i] = j;
        } else {
            i -= 1; // deletion: member has nothing at this column
            offsets[i] = j;
        }
    }
    // Enforce monotonicity (defensive; traceback already yields it).
    for c in 1..=n {
        if offsets[c] < offsets[c - 1] {
            offsets[c] = offsets[c - 1];
        }
    }
    offsets
}

fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        parent[rb] = ra;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use trace::Message;

    fn mk_trace(payloads: &[&[u8]]) -> Trace {
        Trace::new(
            "t",
            payloads
                .iter()
                .map(|p| Message::builder(Bytes::copy_from_slice(p)).build())
                .collect(),
        )
    }

    #[test]
    fn lcs_basics() {
        assert_eq!(alignment_matches(b"abc", b"abc"), 3);
        assert_eq!(alignment_matches(b"abc", b"xbz"), 1);
        assert_eq!(alignment_matches(b"", b"abc"), 0);
        assert_eq!(alignment_matches(b"axbxc", b"abc"), 3);
    }

    #[test]
    fn static_dynamic_split() {
        // Common 4-byte header, varying 4-byte body: expect a cut at 4.
        let t = mk_trace(&[
            b"COMMONHEADER\x11\x22\x33\x44",
            b"COMMONHEADER\x55\x66\x77\x88",
            b"COMMONHEADER\x99\xaa\xbb\xcc",
        ]);
        let seg = Netzob::default().segment_trace(&t).unwrap();
        for s in &seg.messages {
            assert!(s.cuts().contains(&12), "cuts: {:?}", s.cuts());
        }
    }

    #[test]
    fn variable_length_members_align() {
        // Same header, bodies of different lengths.
        let t = mk_trace(&[
            b"LONGHEADER\x01\x02\x03",
            b"LONGHEADER\x04\x05\x06\x07\x08",
            b"LONGHEADER\x09",
        ]);
        let seg = Netzob::default().segment_trace(&t).unwrap();
        for (s, m) in seg.messages.iter().zip(t.iter()) {
            let total: usize = s.ranges().iter().map(|r| r.len()).sum();
            assert_eq!(total, m.payload().len());
            assert!(s.cuts().contains(&10), "cuts: {:?}", s.cuts());
        }
    }

    #[test]
    fn budget_failure_is_reported() {
        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 100]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| &p[..]).collect();
        let t = mk_trace(&refs);
        let tight = Netzob {
            budget: WorkBudget::new(1000),
            ..Netzob::default()
        };
        let err = tight.segment_trace(&t).unwrap_err();
        assert!(matches!(
            err,
            SegmentError::BudgetExceeded {
                segmenter: "netzob",
                ..
            }
        ));
    }

    #[test]
    fn dissimilar_messages_form_separate_groups() {
        // Totally different message families must still each tile.
        let t = mk_trace(&[
            b"\x00\x00\x00\x00\x00\x00\x00\x00",
            b"ASCIITEXTMESSAGE",
            b"\x00\x00\x00\x00\x00\x00\x00\x00",
        ]);
        let seg = Netzob::default().segment_trace(&t).unwrap();
        assert_eq!(seg.messages.len(), 3);
        for (s, m) in seg.messages.iter().zip(t.iter()) {
            let total: usize = s.ranges().iter().map(|r| r.len()).sum();
            assert_eq!(total, m.payload().len());
        }
    }

    #[test]
    fn empty_trace_and_empty_messages() {
        let t = mk_trace(&[]);
        assert!(Netzob::default()
            .segment_trace(&t)
            .unwrap()
            .messages
            .is_empty());
        let t2 = mk_trace(&[b"", b""]);
        let seg = Netzob::default().segment_trace(&t2).unwrap();
        assert!(seg.messages.iter().all(|s| s.is_empty()));
    }

    #[test]
    fn align_offsets_are_monotone() {
        let rep = b"abcdefgh";
        let member = b"abXdefh";
        let off = align_offsets(rep, member);
        assert_eq!(off.len(), rep.len() + 1);
        assert!(off.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(off[0], 0);
        assert_eq!(off[rep.len()], member.len());
    }
}
