//! Segmenter behaviour on the real protocol generators: every segmenter
//! must produce valid tilings, and the paper's qualitative observations
//! should hold (NEMESYS handles everything, Netzob/CSP abort on
//! oversized work).

use proptest::prelude::*;
use protocols::{Protocol, ProtocolSpec};
use segment::csp::Csp;
use segment::nemesys::Nemesys;
use segment::netzob::Netzob;
use segment::{SegmentError, Segmenter, WorkBudget};

fn check_tiling(seg: &segment::TraceSegmentation, trace: &trace::Trace) {
    assert_eq!(seg.messages.len(), trace.len());
    for (s, m) in seg.messages.iter().zip(trace.iter()) {
        let total: usize = s.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(total, m.payload().len());
        for r in s.ranges() {
            assert!(!r.is_empty());
        }
    }
}

#[test]
fn nemesys_tiles_every_protocol() {
    for p in Protocol::ALL {
        let t = p.generate(40, 7);
        let seg = Nemesys::default().segment_trace(&t).unwrap();
        check_tiling(&seg, &t);
        // NEMESYS must actually segment: more segments than messages.
        assert!(seg.total_segments() > t.len(), "{p} produced no structure");
    }
}

#[test]
fn csp_tiles_every_protocol_with_ample_budget() {
    for p in Protocol::ALL {
        let t = p.generate(40, 8);
        let csp = Csp {
            budget: WorkBudget::unlimited(),
            ..Csp::default()
        };
        let seg = csp.segment_trace(&t).unwrap();
        check_tiling(&seg, &t);
    }
}

#[test]
fn netzob_tiles_small_traces() {
    for p in [Protocol::Ntp, Protocol::Dns, Protocol::Au] {
        let t = p.generate(20, 9);
        let seg = Netzob::default().segment_trace(&t).unwrap();
        check_tiling(&seg, &t);
    }
}

#[test]
fn netzob_aborts_on_large_dhcp() {
    // DHCP's 300-byte messages at trace size 1000 exceed the gigacell
    // budget — the paper's "fails" cell.
    let t = Protocol::Dhcp.generate(1000, 10);
    let err = Netzob::default().segment_trace(&t).unwrap_err();
    assert!(matches!(
        err,
        SegmentError::BudgetExceeded {
            segmenter: "netzob",
            ..
        }
    ));
}

#[test]
fn netzob_fixed_structure_protocol_segments_well() {
    // NTP has fixed structure; Netzob's alignment should find consistent
    // cuts across messages (paper: Netzob is most suited for fixed
    // structure).
    let t = Protocol::Ntp.generate(30, 11);
    let seg = Netzob::default().segment_trace(&t).unwrap();
    let cut_sets: std::collections::HashSet<Vec<usize>> =
        seg.messages.iter().map(|s| s.cuts()).collect();
    // Identical-length NTP messages should mostly share cut patterns.
    assert!(
        cut_sets.len() <= 6,
        "too many distinct cut patterns: {}",
        cut_sets.len()
    );
}

#[test]
fn nemesys_splits_ntp_timestamps_imperfectly() {
    // Fig. 3 of the paper: heuristic boundaries shred high-entropy
    // timestamp tails. Verify NEMESYS places at least one cut *inside*
    // some true timestamp field — the error the paper discusses.
    let t = Protocol::Ntp.generate(60, 12);
    let seg = Nemesys::default().segment_trace(&t).unwrap();
    let gt = protocols::corpus::ground_truth(Protocol::Ntp, &t);
    let mut inside_cut = false;
    for (s, fields) in seg.messages.iter().zip(&gt) {
        for cut in s.cuts() {
            if fields.iter().any(|f| {
                f.kind == protocols::FieldKind::Timestamp
                    && cut > f.offset
                    && cut < f.offset + f.len
            }) {
                inside_cut = true;
            }
        }
    }
    assert!(inside_cut, "expected imperfect timestamp boundaries");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn segmenters_are_deterministic(seed in any::<u64>()) {
        let t = Protocol::Dns.generate(15, seed);
        let a = Nemesys::default().segment_trace(&t).unwrap();
        let b = Nemesys::default().segment_trace(&t).unwrap();
        prop_assert_eq!(a, b);
        let c = Csp::default().segment_trace(&t).unwrap();
        let d = Csp::default().segment_trace(&t).unwrap();
        prop_assert_eq!(c, d);
    }
}
