//! Property-based invariants for all three segmenters: whatever bytes
//! come in, every segmenter must emit a valid tiling, deterministically.

use bytes::Bytes;
use proptest::prelude::*;
use segment::csp::Csp;
use segment::nemesys::Nemesys;
use segment::netzob::Netzob;
use segment::{Segmenter, TraceSegmentation, WorkBudget};
use trace::{Message, Trace};

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..80), 1..12).prop_map(|payloads| {
        Trace::new(
            "prop",
            payloads
                .into_iter()
                .map(|p| Message::builder(Bytes::from(p)).build())
                .collect(),
        )
    })
}

fn assert_tiling(seg: &TraceSegmentation, trace: &Trace) -> Result<(), TestCaseError> {
    prop_assert_eq!(seg.messages.len(), trace.len());
    for (s, m) in seg.messages.iter().zip(trace.iter()) {
        let mut cursor = 0usize;
        for r in s.ranges() {
            prop_assert_eq!(r.start, cursor);
            prop_assert!(r.end > r.start);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, m.payload().len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nemesys_always_tiles(trace in arb_trace()) {
        let seg = Nemesys::default().segment_trace(&trace).unwrap();
        assert_tiling(&seg, &trace)?;
    }

    #[test]
    fn nemesys_variants_always_tile(
        trace in arb_trace(),
        sigma in 0.1f64..2.5,
        merge_chars in any::<bool>(),
        zero_run_min in 0usize..5,
    ) {
        let seg = Nemesys { sigma, merge_chars, zero_run_min }
            .segment_trace(&trace)
            .unwrap();
        assert_tiling(&seg, &trace)?;
    }

    #[test]
    fn csp_always_tiles(trace in arb_trace(), min_support in 0.1f64..0.9) {
        let csp = Csp { min_support, budget: WorkBudget::unlimited(), ..Csp::default() };
        let seg = csp.segment_trace(&trace).unwrap();
        assert_tiling(&seg, &trace)?;
    }

    #[test]
    fn netzob_always_tiles(trace in arb_trace(), threshold in 0.2f64..0.9) {
        let netzob = Netzob { similarity_threshold: threshold, ..Netzob::default() };
        let seg = netzob.segment_trace(&trace).unwrap();
        assert_tiling(&seg, &trace)?;
    }

    #[test]
    fn segmenters_are_pure_functions(trace in arb_trace()) {
        prop_assert_eq!(
            Nemesys::default().segment_trace(&trace).unwrap(),
            Nemesys::default().segment_trace(&trace).unwrap()
        );
        let csp = Csp { budget: WorkBudget::unlimited(), ..Csp::default() };
        prop_assert_eq!(
            csp.segment_trace(&trace).unwrap(),
            csp.segment_trace(&trace).unwrap()
        );
        prop_assert_eq!(
            Netzob::default().segment_trace(&trace).unwrap(),
            Netzob::default().segment_trace(&trace).unwrap()
        );
    }
}
