//! `ftcd` — the field type clustering daemon.
//!
//! ```text
//! ftcd [--addr A] [--port-file F] [--workers N] [--queue N]
//!      [--threads N] [--cache-dir D] [--job-history N]
//!      [--sessions N] [--neighbor-backend B] [--no-mmap]
//! ```
//!
//! Binds loopback by default, prints the resolved address, serves until
//! a client sends `Shutdown`, drains in-flight jobs, and exits 0.

use serve::daemon::{start, ServerConfig};

const USAGE: &str = "\
ftcd — field type clustering analysis daemon

USAGE:
  ftcd [--addr A] [--port-file F] [--workers N] [--queue N] [--threads N] [--cache-dir D]
       [--job-history N] [--sessions N] [--neighbor-backend B] [--no-mmap]

OPTIONS:
  --addr A         listen address (default 127.0.0.1:4747; port 0 = ephemeral)
  --port-file F    write the resolved TCP port to F once listening
  --workers N      concurrent analysis jobs (default 2)
  --queue N        admission capacity: max jobs queued or running (default 8)
  --threads N      threads per analysis stage, 0 = auto (never affects results)
  --cache-dir D    persist stage artifacts under D and warm-start from them
  --job-history N  finished job records (and reports) kept queryable (default 256)
  --sessions N     warm analysis sessions kept in memory, floor 1 (default 16;
                   never affects results, only re-analysis cost after eviction)
  --no-mmap        read cache artifacts via heap reads instead of memory
                   mappings (never affects results, only copies)
  --neighbor-backend B
                   neighbor queries: auto|matrix|tiled|vptree (default auto;
                   never affects results, only memory and wall time)

EXIT CODES:
  0  clean shutdown    1  runtime failure    2  bad usage";

fn fail_usage(message: &str) -> ! {
    eprintln!("error: ftcd: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig {
        addr: "127.0.0.1:4747".to_string(),
        ..ServerConfig::default()
    };
    let mut port_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => fail_usage(&format!("{flag} needs a value")),
            }
        };
        match arg.as_str() {
            "--addr" => config.addr = value_for("--addr"),
            "--port-file" => port_file = Some(value_for("--port-file")),
            "--workers" => {
                config.workers = value_for("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--workers needs a number"))
            }
            "--queue" => {
                config.queue_capacity = value_for("--queue")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--queue needs a number"))
            }
            "--threads" => {
                config.threads = value_for("--threads")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--threads needs a number"))
            }
            "--cache-dir" => config.cache_dir = Some(value_for("--cache-dir")),
            "--no-mmap" => store::mmap::set_enabled(false),
            "--neighbor-backend" => {
                config.neighbor_backend = value_for("--neighbor-backend")
                    .parse()
                    .unwrap_or_else(|e: String| fail_usage(&e))
            }
            "--job-history" => {
                config.job_history = value_for("--job-history")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--job-history needs a number"))
            }
            "--sessions" => {
                config.sessions = value_for("--sessions")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail_usage("--sessions needs a number"))
                    .max(1)
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail_usage(&format!("unknown flag `{other}`")),
        }
    }
    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: ftcd: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.addr();
    println!("ftcd listening on {addr}");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", addr.port())) {
            eprintln!("error: ftcd: writing {path}: {e}");
            std::process::exit(1);
        }
    }
    handle.wait();
    println!("ftcd: drained, exiting");
}
