//! A blocking client for the `ftcd` wire protocol.
//!
//! One persistent connection, one request frame in flight at a time.
//! The typed helpers unwrap the expected response variant and surface
//! everything else as a [`ClientError`]; [`Client::call`] is the raw
//! escape hatch the CLI's `submit`/`query`/`stats` commands build on.

use crate::proto::{JobState, Request, Response, ServerStats};
use crate::wire::{read_frame, write_frame, WireError, MAX_FRAME};
use std::net::TcpStream;
use std::time::Duration;

/// Capture bytes sent per [`Client::stream_capture`] chunk: well under
/// [`MAX_FRAME`] so the request frame (chunk + label + segmenter +
/// framing overhead) always fits.
pub const STREAM_CHUNK_BYTES: usize = (MAX_FRAME as usize) / 4;

/// Progress of a capture stream, as acknowledged by the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamProgress {
    /// The stream's handle; pass it back to continue the stream.
    pub stream_id: u64,
    /// The stream's trace, 0 until the first commit creates it.
    pub trace_id: u64,
    /// Capture bytes buffered server-side, after this request.
    pub buffered: u64,
    /// Batches committed so far on this stream.
    pub batches: u64,
    /// Job admitted by this commit, 0 when none was.
    pub job_id: u64,
}

/// An inferred state machine as served by the daemon, with the
/// daemon's canonical renderings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMachineReport {
    /// The queried trace.
    pub trace_id: u64,
    /// States of the machine.
    pub states: u64,
    /// Transitions of the machine.
    pub transitions: u64,
    /// Flows the machine was inferred from.
    pub flows: u64,
    /// Deterministic Graphviz DOT rendering (UTF-8).
    pub dot: Vec<u8>,
    /// Deterministic JSON rendering (UTF-8).
    pub json: Vec<u8>,
}

/// A client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Wire-level failure (socket, framing, codec).
    Wire(WireError),
    /// The daemon refused the request (admission control).
    Rejected {
        /// Suggested backoff before retrying.
        retry_after_ms: u64,
        /// The daemon's reason.
        reason: String,
    },
    /// The daemon answered [`Response::Error`].
    Daemon(String),
    /// The daemon answered with a variant the request does not expect.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Rejected {
                retry_after_ms,
                reason,
            } => write!(f, "rejected: {reason} (retry after {retry_after_ms} ms)"),
            ClientError::Daemon(m) => write!(f, "daemon error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A connection to a running `ftcd`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:4747`).
    ///
    /// # Errors
    ///
    /// The underlying connect error.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Ok(Self {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Wire-level failures only; daemon-level declines come back as
    /// `Ok(Response::Rejected | Response::Error)`.
    pub fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, request.kind(), &request.encode())?;
        let (kind, payload) = read_frame(&mut self.stream)?;
        Response::decode(kind, &payload)
    }

    fn expect(&mut self, request: &Request, what: &str) -> Result<Response, ClientError> {
        match self.call(request)? {
            Response::Rejected {
                retry_after_ms,
                reason,
            } => Err(ClientError::Rejected {
                retry_after_ms,
                reason,
            }),
            Response::Error { message } => Err(ClientError::Daemon(message)),
            other => {
                let _ = what;
                Ok(other)
            }
        }
    }

    /// Submits a capture; returns `(trace_id, surviving messages)`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on rejection, daemon error, or wire failure.
    pub fn submit_trace(
        &mut self,
        label: &str,
        pcap: Vec<u8>,
        port: Option<u16>,
        max: Option<u64>,
        reassemble: bool,
    ) -> Result<(u64, u64), ClientError> {
        match self.expect(
            &Request::SubmitTrace {
                label: label.to_string(),
                pcap,
                port,
                max,
                reassemble,
            },
            "TraceAccepted",
        )? {
            Response::TraceAccepted { trace_id, messages } => Ok((trace_id, messages)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Appends capture bytes to an existing trace; returns the new
    /// surviving message count.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on rejection, daemon error, or wire failure.
    pub fn append_messages(&mut self, trace_id: u64, pcap: Vec<u8>) -> Result<u64, ClientError> {
        match self.expect(&Request::AppendMessages { trace_id, pcap }, "TraceAccepted")? {
            Response::TraceAccepted { messages, .. } => Ok(messages),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Enqueues an analysis; returns the job id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with the daemon's retry hint when
    /// admission control refuses; other [`ClientError`]s as usual.
    pub fn analyze(
        &mut self,
        trace_id: u64,
        segmenter: &str,
        deadline_ms: u64,
    ) -> Result<u64, ClientError> {
        match self.expect(
            &Request::Analyze {
                trace_id,
                segmenter: segmenter.to_string(),
                deadline_ms,
            },
            "JobAccepted",
        )? {
            Response::JobAccepted { job_id } => Ok(job_id),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches a job's current state.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on daemon error or wire failure.
    pub fn query(&mut self, job_id: u64) -> Result<JobState, ClientError> {
        match self.expect(&Request::QueryReport { job_id }, "JobStatus")? {
            Response::JobStatus { state, .. } => Ok(state),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Cancels a job; returns its state after the cancel.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on daemon error or wire failure.
    pub fn cancel(&mut self, job_id: u64) -> Result<JobState, ClientError> {
        match self.expect(&Request::CancelJob { job_id }, "JobStatus")? {
            Response::JobStatus { state, .. } => Ok(state),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on daemon error or wire failure.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.expect(&Request::Stats, "StatsReport")? {
            Response::StatsReport(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Requests shutdown; returns the number of jobs the daemon is
    /// draining.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on daemon error or wire failure.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        match self.expect(&Request::Shutdown, "ShuttingDown")? {
            Response::ShuttingDown { drained } => Ok(drained),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sends one stream request: buffers `chunk` on `stream_id`
    /// (0 opens a new stream) and, when `commit` is set, closes the
    /// batch and enqueues its analysis.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on rejection, daemon error, or wire failure.
    pub fn stream(
        &mut self,
        stream_id: u64,
        label: &str,
        chunk: Vec<u8>,
        commit: bool,
        segmenter: &str,
    ) -> Result<StreamProgress, ClientError> {
        match self.expect(
            &Request::StreamTrace {
                stream_id,
                label: label.to_string(),
                chunk,
                commit,
                segmenter: segmenter.to_string(),
            },
            "StreamAccepted",
        )? {
            Response::StreamAccepted {
                stream_id,
                trace_id,
                buffered,
                batches,
                job_id,
            } => Ok(StreamProgress {
                stream_id,
                trace_id,
                buffered,
                batches,
                job_id,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Streams one capture batch in [`STREAM_CHUNK_BYTES`] chunks and
    /// commits it, so a batch is never bounded by a single frame.
    /// Returns the final progress (its `job_id` is the admitted
    /// analysis, or 0 when admission declined the batch).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on rejection, daemon error, or wire failure.
    pub fn stream_capture(
        &mut self,
        stream_id: u64,
        label: &str,
        pcap: &[u8],
        segmenter: &str,
    ) -> Result<StreamProgress, ClientError> {
        let mut sid = stream_id;
        let mut chunks = pcap.chunks(STREAM_CHUNK_BYTES);
        let mut last = chunks.next_back().map(<[u8]>::to_vec).unwrap_or_default();
        for chunk in chunks {
            sid = self
                .stream(sid, label, chunk.to_vec(), false, segmenter)?
                .stream_id;
        }
        self.stream(sid, label, std::mem::take(&mut last), true, segmenter)
    }

    /// Fetches the per-batch drift history of a streamed trace.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on daemon error or wire failure.
    pub fn drift_report(&mut self, trace_id: u64) -> Result<Vec<ingest::DriftRecord>, ClientError> {
        match self.expect(&Request::DriftReport { trace_id }, "DriftHistory")? {
            Response::DriftHistory { records, .. } => Ok(records),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Infers (or fetches the cached) protocol state machine of a
    /// submitted trace. `deadline_ms` bounds a cold inference; 0 means
    /// none.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on daemon error (including a tripped deadline)
    /// or wire failure.
    pub fn infer_statemachine(
        &mut self,
        trace_id: u64,
        segmenter: &str,
        deadline_ms: u64,
    ) -> Result<StateMachineReport, ClientError> {
        match self.expect(
            &Request::InferStateMachine {
                trace_id,
                segmenter: segmenter.to_string(),
                deadline_ms,
            },
            "StateMachine",
        )? {
            Response::StateMachine {
                trace_id,
                states,
                transitions,
                flows,
                dot,
                json,
            } => Ok(StateMachineReport {
                trace_id,
                states,
                transitions,
                flows,
                dot,
                json,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Polls [`query`](Self::query) until the job reaches a terminal
    /// state, sleeping `interval` between polls.
    ///
    /// # Errors
    ///
    /// Propagates query failures; a `Failed` job comes back as
    /// `Ok(JobState::Failed { .. })` for the caller to interpret.
    pub fn wait_for(&mut self, job_id: u64, interval: Duration) -> Result<JobState, ClientError> {
        loop {
            match self.query(job_id)? {
                JobState::Queued { .. } | JobState::Running => std::thread::sleep(interval),
                terminal => return Ok(terminal),
            }
        }
    }
}
