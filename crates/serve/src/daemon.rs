//! The `ftcd` daemon: listener, connection handlers, session manager,
//! admission control, and graceful shutdown.
//!
//! # Architecture
//!
//! One accept loop (its own thread) spawns a handler thread per
//! connection; handlers decode one request frame at a time and answer
//! with one response frame. Analyses never run on handler threads —
//! admission control either enqueues the job on a fixed
//! [`parkit::Pool`] of analysis workers or answers
//! [`Response::Rejected`] with a retry hint, so a full daemon degrades
//! to fast, explicit rejections instead of unbounded queues or hung
//! sockets.
//!
//! # Session manager
//!
//! Traces are preprocessed once at submit time (the same code path as
//! the offline CLI, see [`crate::prepare`]). Each `(trace, segmenter)`
//! pair owns at most one warm [`AnalysisSession`], parked in the
//! manager between jobs: a worker checks the session out, drives the
//! remaining stages, and checks it back in, so repeated analyses of the
//! same trace reuse every cached artifact. Every trace carries a
//! generation counter bumped by [`Request::AppendMessages`]; sessions
//! record the generation they were built against, and a session whose
//! trace grew while it ran is dropped at check-in instead of re-parked
//! — no analysis ever reuses state from before an append. With
//! `--cache-dir` the sessions share one [`ArtifactStore`], adding
//! cross-restart warm starts and incremental matrix growth after
//! appends.
//!
//! # Cancellation and deadlines
//!
//! Every job carries a [`CancelToken`]; cancelling a queued job frees
//! its admission slot immediately, cancelling a running job trips the
//! token and the session stops at the next stage boundary (artifacts
//! computed so far stay cached — a later job resumes from them).
//!
//! # Shutdown
//!
//! [`Request::Shutdown`] stops admissions, lets the workers drain every
//! queued and running job, then unblocks the accept loop;
//! [`ServerHandle::wait`] returns and the binary exits 0. Connections
//! stay serviced during the drain so clients can still poll reports.

use crate::prepare::{build_segmenter, peak_rss_bytes, preprocess, PrepareOpts};
use crate::proto::{JobState, Request, Response, ServerStats};
use crate::wire::{read_frame, write_frame, WireError};
use fieldclust::report::standard_report;
use fieldclust::session::AnalysisSession;
use fieldclust::{
    ArtifactStore, CancelToken, FieldTypeClusterer, NeighborBackend, PipelineError,
    StateMachineConfig,
};
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use trace::Trace;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address. Loopback by default; port 0 binds an ephemeral
    /// port (read it back from [`ServerHandle::addr`]).
    pub addr: String,
    /// Analysis worker threads (jobs running concurrently).
    pub workers: usize,
    /// Admission capacity: maximum jobs queued *or* running. The
    /// capacity-plus-first client gets [`Response::Rejected`] with a
    /// retry hint.
    pub queue_capacity: usize,
    /// Threads for each analysis' parallel stages (`0` = auto). Never
    /// affects results, only wall time.
    pub threads: usize,
    /// Persist stage artifacts under this directory and warm-start
    /// from them.
    pub cache_dir: Option<String>,
    /// Finished job records (and their reports) kept for
    /// [`Request::QueryReport`]. Beyond this the oldest terminal
    /// records are evicted, so reports expire — poll them out before
    /// submitting this many further jobs. Bounds daemon memory.
    pub job_history: usize,
    /// Test hook: stall each job this long after it has checked out
    /// its session but before it runs its stages, making queue and
    /// session states observable deterministically.
    pub worker_delay_ms: u64,
    /// Neighbor backend for every analysis session (matrix, tiled,
    /// vptree, or auto). Never affects results, only memory and wall
    /// time.
    pub neighbor_backend: NeighborBackend,
    /// Warm sessions parked at once, across all traces (floor 1).
    /// Beyond this the least recently used session is dropped — its
    /// artifacts survive in the shared store, so eviction costs a warm
    /// start, not a recompute.
    pub sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 8,
            threads: 0,
            cache_dir: None,
            job_history: 256,
            worker_delay_ms: 0,
            neighbor_backend: NeighborBackend::default(),
            sessions: 16,
        }
    }
}

/// What a job is doing, daemon-side.
enum JobPhase {
    Queued,
    Running,
    Done(String),
    Failed(String),
    Cancelled,
}

struct JobRecord {
    phase: JobPhase,
    token: CancelToken,
    /// Guards the admission slot against double release (a cancelled
    /// queued job frees its slot immediately; the worker must not free
    /// it again when it later skips the job).
    slot_released: bool,
}

struct TraceEntry {
    /// Raw messages as parsed (and possibly reassembled), before
    /// preprocessing — appends extend this and re-run the preprocessor
    /// over the concatenation, exactly like analyzing a merged capture
    /// offline.
    raw: Trace,
    opts: PrepareOpts,
    prepared: Trace,
    /// Bumped by every append. A session (parked *or* checked out by a
    /// running job) built against an older generation is stale: its
    /// in-memory artifacts describe the pre-append trace, so it must
    /// never serve a post-append analysis.
    generation: u64,
    /// Previous-clustering snapshot for drift-tracked (streamed) jobs.
    drift: ingest::DriftTracker,
    /// One record per completed drift-tracked analysis, oldest first.
    drift_history: Vec<ingest::DriftRecord>,
}

/// A parked warm session plus a recency stamp for eviction.
struct WarmSession {
    session: AnalysisSession<'static>,
    /// The trace generation the session was built against.
    generation: u64,
    last_used: u64,
}

/// An open chunked-ingestion stream (`Request::StreamTrace`).
struct StreamEntry {
    /// The trace the stream feeds; 0 until the first commit creates it.
    trace_id: u64,
    /// Display label for the trace created by the first commit.
    label: String,
    /// Capture bytes buffered since the last commit.
    buffer: Vec<u8>,
    /// Batches committed on this stream.
    batches: u64,
}

/// Everything behind the manager lock.
struct Core {
    traces: HashMap<u64, TraceEntry>,
    sessions: HashMap<(u64, String), WarmSession>,
    jobs: HashMap<u64, JobRecord>,
    streams: HashMap<u64, StreamEntry>,
    next_trace_id: u64,
    next_job_id: u64,
    next_stream_id: u64,
    use_counter: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    job_wall_ns: AtomicU64,
    job_count: AtomicU64,
    session_evictions: AtomicU64,
    stream_batches: AtomicU64,
    kernel_evals: AtomicU64,
    pruned_candidates: AtomicU64,
    strata_skipped: AtomicU64,
}

struct Shared {
    config: ServerConfig,
    /// The resolved listen address (port 0 already bound).
    addr: SocketAddr,
    core: Mutex<Core>,
    counters: Counters,
    stage_wall: Mutex<Vec<(String, u64)>>,
    /// Jobs queued or running — the admission-controlled resource.
    outstanding: AtomicUsize,
    accepting: AtomicBool,
    shutdown_requested: AtomicBool,
    store: Option<ArtifactStore>,
    pool: parkit::Pool,
}

/// A running daemon. Dropping the handle without [`wait`](Self::wait)
/// leaves the daemon serving (threads are detached from the handle).
pub struct ServerHandle {
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Starts a daemon with `config`.
///
/// # Errors
///
/// The bind error if the listen address is unavailable, or the store
/// error if the cache directory cannot be created.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let store = match &config.cache_dir {
        Some(dir) => Some(ArtifactStore::open(dir)?),
        None => None,
    };
    let shared = Arc::new(Shared {
        pool: parkit::Pool::new(config.workers.max(1)),
        config,
        addr,
        core: Mutex::new(Core {
            traces: HashMap::new(),
            sessions: HashMap::new(),
            jobs: HashMap::new(),
            streams: HashMap::new(),
            next_trace_id: 1,
            next_job_id: 1,
            next_stream_id: 1,
            use_counter: 0,
        }),
        counters: Counters::default(),
        stage_wall: Mutex::new(Vec::new()),
        outstanding: AtomicUsize::new(0),
        accepting: AtomicBool::new(true),
        shutdown_requested: AtomicBool::new(false),
        store,
    });
    let accept_thread = std::thread::spawn(move || accept_loop(&listener, &shared));
    Ok(ServerHandle {
        addr,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a [`Request::Shutdown`] has been served and every
    /// in-flight job has drained.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown_requested.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        std::thread::spawn(move || handle_connection(stream, &conn_shared));
    }
    // Drain: admissions are already closed; wait for the outstanding
    // jobs to finish. Handlers keep answering (reports stay pollable).
    while shared.outstanding.load(Ordering::Acquire) > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let request = match read_frame(&mut reader) {
            Ok((kind, payload)) => match Request::decode(kind, &payload) {
                Ok(req) => req,
                Err(e) => {
                    // Structured decline; the framing itself was sound,
                    // so the connection can continue.
                    let resp = Response::Error {
                        message: e.to_string(),
                    };
                    if write_frame(&mut writer, resp.kind(), &resp.encode()).is_err() {
                        return;
                    }
                    continue;
                }
            },
            Err(WireError::Closed) => return,
            Err(_) => {
                // Framing-level damage: the stream position is no
                // longer trustworthy, drop the connection.
                let _ = writer.flush();
                return;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = serve_request(request, shared);
        let written = write_frame(&mut writer, response.kind(), &response.encode());
        if is_shutdown {
            // Only unblock the accept loop (and thus process exit)
            // after the ack frame is in the socket buffer — otherwise
            // the process can die before the client sees the reply.
            trigger_shutdown(shared);
        }
        if written.is_err() {
            return;
        }
    }
}

fn serve_request(request: Request, shared: &Arc<Shared>) -> Response {
    match request {
        Request::SubmitTrace {
            label,
            pcap,
            port,
            max,
            reassemble,
        } => submit_trace(shared, label, &pcap, port, max, reassemble),
        Request::AppendMessages { trace_id, pcap } => append_messages(shared, trace_id, &pcap),
        Request::Analyze {
            trace_id,
            segmenter,
            deadline_ms,
        } => admit_job(shared, trace_id, segmenter, deadline_ms, false),
        Request::QueryReport { job_id } => query_report(shared, job_id),
        Request::CancelJob { job_id } => cancel_job(shared, job_id),
        Request::Stats => Response::StatsReport(stats(shared)),
        Request::Shutdown => shutdown(shared),
        Request::StreamTrace {
            stream_id,
            label,
            chunk,
            commit,
            segmenter,
        } => stream_trace(shared, stream_id, label, &chunk, commit, &segmenter),
        Request::DriftReport { trace_id } => drift_report(shared, trace_id),
        Request::InferStateMachine {
            trace_id,
            segmenter,
            deadline_ms,
        } => infer_statemachine(shared, trace_id, &segmenter, deadline_ms),
    }
}

fn submit_trace(
    shared: &Arc<Shared>,
    label: String,
    pcap: &[u8],
    port: Option<u16>,
    max: Option<u64>,
    reassemble: bool,
) -> Response {
    if !shared.accepting.load(Ordering::Acquire) {
        return Response::Rejected {
            retry_after_ms: 0,
            reason: "shutting down".to_string(),
        };
    }
    let opts = PrepareOpts {
        port,
        max: max.map(|n| n as usize),
        reassemble,
    };
    // Keep the raw (post-reassembly, pre-preprocessing) messages so
    // appends can re-run the preprocessor over the concatenation.
    let raw = match trace::pcapng::read_any(pcap, "capture") {
        Ok(t) => t,
        Err(e) => {
            return Response::Error {
                message: format!("parsing capture: {e}"),
            }
        }
    };
    let raw = if reassemble {
        trace::reassembly::reassemble(&raw, &trace::reassembly::NbssFramer).0
    } else {
        raw
    };
    // Preprocess the already-parsed messages directly: same result as
    // `prepare_trace` on the original bytes (it is its second half),
    // without parsing and reassembling the capture a second time.
    let prepared = match preprocess(&raw, &opts) {
        Ok(t) => t,
        Err(message) => return Response::Error { message },
    };
    let messages = prepared.len() as u64;
    let mut core = shared.core.lock().expect("core lock");
    let trace_id = core.next_trace_id;
    core.next_trace_id += 1;
    eprintln!("ftcd: trace {trace_id} ({label}): {messages} messages");
    core.traces.insert(
        trace_id,
        TraceEntry {
            raw,
            opts,
            prepared,
            generation: 0,
            drift: ingest::DriftTracker::new(),
            drift_history: Vec::new(),
        },
    );
    Response::TraceAccepted { trace_id, messages }
}

fn append_messages(shared: &Arc<Shared>, trace_id: u64, pcap: &[u8]) -> Response {
    if !shared.accepting.load(Ordering::Acquire) {
        return Response::Rejected {
            retry_after_ms: 0,
            reason: "shutting down".to_string(),
        };
    }
    let addition = match trace::pcapng::read_any(pcap, "capture") {
        Ok(t) => t,
        Err(e) => {
            return Response::Error {
                message: format!("parsing capture: {e}"),
            }
        }
    };
    let mut core = shared.core.lock().expect("core lock");
    let Some(entry) = core.traces.get_mut(&trace_id) else {
        return Response::Error {
            message: format!("unknown trace {trace_id}"),
        };
    };
    let addition = if entry.opts.reassemble {
        trace::reassembly::reassemble(&addition, &trace::reassembly::NbssFramer).0
    } else {
        addition
    };
    let mut messages: Vec<trace::Message> = entry.raw.messages().to_vec();
    messages.extend(addition.messages().iter().cloned());
    let merged = Trace::new(entry.raw.name(), messages);
    // Same guard as submit: an append that filters the trace to
    // nothing is refused *before* the entry mutates, so later jobs
    // never see an unanalyzable trace.
    let prepared = match preprocess(&merged, &entry.opts) {
        Ok(t) => t,
        Err(message) => return Response::Error { message },
    };
    entry.raw = merged;
    entry.prepared = prepared;
    entry.generation += 1;
    let messages = entry.prepared.len() as u64;
    // The grown trace invalidates every session built before it:
    // parked ones are dropped here, checked-out ones (a job running
    // right now) are dropped at check-in by the generation bump above.
    // The next analysis warm-starts from the shared store's prefix
    // artifacts instead (incremental matrix growth).
    core.sessions.retain(|(t, _), _| *t != trace_id);
    Response::TraceAccepted { trace_id, messages }
}

/// Chunked streaming ingestion: buffer capture bytes per stream; on
/// commit, create the stream's trace (first batch) or append to it
/// (later batches — the warm-growth path `AppendMessages` uses), then
/// admit a drift-tracked analysis through normal admission control.
/// Chunking keeps any single frame under `MAX_FRAME` while the stream
/// itself is unbounded.
fn stream_trace(
    shared: &Arc<Shared>,
    stream_id: u64,
    label: String,
    chunk: &[u8],
    commit: bool,
    segmenter: &str,
) -> Response {
    if !shared.accepting.load(Ordering::Acquire) {
        return Response::Rejected {
            retry_after_ms: 0,
            reason: "shutting down".to_string(),
        };
    }
    // Buffer the chunk (creating the stream when asked to).
    let (sid, batch_bytes, trace_id) = {
        let mut core = shared.core.lock().expect("core lock");
        let sid = if stream_id == 0 {
            let sid = core.next_stream_id;
            core.next_stream_id += 1;
            core.streams.insert(
                sid,
                StreamEntry {
                    trace_id: 0,
                    label,
                    buffer: Vec::new(),
                    batches: 0,
                },
            );
            sid
        } else {
            stream_id
        };
        let Some(entry) = core.streams.get_mut(&sid) else {
            return Response::Error {
                message: format!("unknown stream {stream_id}"),
            };
        };
        entry.buffer.extend_from_slice(chunk);
        if !commit {
            return Response::StreamAccepted {
                stream_id: sid,
                trace_id: entry.trace_id,
                buffered: entry.buffer.len() as u64,
                batches: entry.batches,
                job_id: 0,
            };
        }
        // Commit: hand the buffered capture to the submit/append path
        // outside this lock. The buffer is only cleared on success, so
        // a failed commit (parse error, filtered-to-empty) loses
        // nothing — the client can send more bytes and commit again.
        (sid, entry.buffer.clone(), entry.trace_id)
    };
    if batch_bytes.is_empty() {
        return Response::Error {
            message: "commit with no buffered capture bytes".to_string(),
        };
    }
    let accepted = if trace_id == 0 {
        let label = {
            let core = shared.core.lock().expect("core lock");
            core.streams.get(&sid).map(|e| e.label.clone())
        };
        let Some(label) = label else {
            return Response::Error {
                message: format!("unknown stream {sid}"),
            };
        };
        submit_trace(shared, label, &batch_bytes, None, None, false)
    } else {
        append_messages(shared, trace_id, &batch_bytes)
    };
    let Response::TraceAccepted { trace_id, .. } = accepted else {
        return accepted; // Error or Rejected from the submit/append path
    };
    let batches = {
        let mut core = shared.core.lock().expect("core lock");
        let Some(entry) = core.streams.get_mut(&sid) else {
            return Response::Error {
                message: format!("unknown stream {sid}"),
            };
        };
        entry.trace_id = trace_id;
        entry.buffer.clear();
        entry.batches += 1;
        entry.batches
    };
    shared
        .counters
        .stream_batches
        .fetch_add(1, Ordering::Relaxed);
    // Queue the batch's re-cluster. An admission rejection still leaves
    // the batch committed — the messages are in the trace — so it is
    // surfaced as job_id 0 and a later `Analyze` (or the next commit)
    // picks the data up.
    let job_id = match admit_job(shared, trace_id, segmenter.to_string(), 0, true) {
        Response::JobAccepted { job_id } => job_id,
        Response::Rejected { .. } => 0,
        other => return other,
    };
    Response::StreamAccepted {
        stream_id: sid,
        trace_id,
        buffered: 0,
        batches,
        job_id,
    }
}

/// Serves a streamed trace's per-batch drift history.
fn drift_report(shared: &Arc<Shared>, trace_id: u64) -> Response {
    let core = shared.core.lock().expect("core lock");
    let Some(entry) = core.traces.get(&trace_id) else {
        return Response::Error {
            message: format!("unknown trace {trace_id}"),
        };
    };
    Response::DriftHistory {
        trace_id,
        records: entry.drift_history.clone(),
    }
}

/// Infers (or serves) a trace's protocol state machine.
///
/// Unlike `Analyze` this answers in-line on the handler thread: the
/// response *is* the artifact, and the expensive path — message-type
/// clustering — runs at most once per trace because the session parks
/// warm between requests and the machine persists in the shared store
/// under a key covering the clustering inputs and the flow partition.
/// A warm repeat therefore rebuilds nothing; the first inference on a
/// large cold trace is bounded by `deadline_ms` (0 = none), which trips
/// the session's cancel token between stages.
fn infer_statemachine(
    shared: &Arc<Shared>,
    trace_id: u64,
    segmenter: &str,
    deadline_ms: u64,
) -> Response {
    let seg = match build_segmenter(segmenter) {
        Ok(s) => s,
        Err(message) => return Response::Error { message },
    };
    // Same checkout pattern as `run_job`: take the warm session (when
    // its generation matches) or warm-start a fresh one on the store.
    let session_key = (trace_id, segmenter.to_string());
    let (mut session, generation) = {
        let mut core = shared.core.lock().expect("core lock");
        let checked_out = core.sessions.remove(&session_key);
        let Some(entry) = core.traces.get(&trace_id) else {
            return Response::Error {
                message: format!("unknown trace {trace_id}"),
            };
        };
        let generation = entry.generation;
        let session = match checked_out {
            Some(warm) if warm.generation == generation => warm.session,
            _ => {
                let mut config = FieldTypeClusterer::default();
                if shared.config.threads > 0 {
                    config.threads = shared.config.threads;
                }
                config.neighbor_backend = shared.config.neighbor_backend;
                let mut s = AnalysisSession::from_owned(entry.prepared.clone(), config);
                if let Some(store) = &shared.store {
                    s.set_store(store.clone());
                }
                s
            }
        };
        (session, generation)
    };
    let token = if deadline_ms > 0 {
        CancelToken::with_deadline(Instant::now() + Duration::from_millis(deadline_ms))
    } else {
        CancelToken::new()
    };
    session.set_cancel_token(token);
    let result = if session.segmentation().is_none() {
        session
            .segment_with(seg.as_ref())
            .map(|_| ())
            .map_err(|e| format!("segmentation failed: {e}"))
    } else {
        Ok(())
    }
    .and_then(|()| {
        session
            .state_machine(&StateMachineConfig::default())
            .map_err(|e| e.to_string())
    });
    // Check the session back in (unless the trace grew while we ran,
    // same staleness rule as `run_job`); even a failed inference keeps
    // its completed stage artifacts warm for the retry.
    check_in_session(shared, session_key, session, generation);
    match result {
        Ok(machine) => Response::StateMachine {
            trace_id,
            states: u64::from(machine.n_states),
            transitions: machine.n_transitions() as u64,
            flows: machine.flows,
            dot: machine.to_dot().into_bytes(),
            json: machine.to_json().into_bytes(),
        },
        Err(message) => Response::Error { message },
    }
}

/// Admission control: reserve a slot or reject with a backoff hint
/// derived from observed job wall times and the current depth.
/// `drift` marks streamed jobs whose completed clusterings feed the
/// trace's drift history.
fn admit_job(
    shared: &Arc<Shared>,
    trace_id: u64,
    segmenter: String,
    deadline_ms: u64,
    drift: bool,
) -> Response {
    if !shared.accepting.load(Ordering::Acquire) {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::Rejected {
            retry_after_ms: 0,
            reason: "shutting down".to_string(),
        };
    }
    if let Err(message) = build_segmenter(&segmenter) {
        return Response::Error { message };
    }
    {
        let core = shared.core.lock().expect("core lock");
        if !core.traces.contains_key(&trace_id) {
            return Response::Error {
                message: format!("unknown trace {trace_id}"),
            };
        }
    }
    let capacity = shared.config.queue_capacity.max(1);
    // Reserve the slot atomically: never exceeds capacity.
    let reserved = shared
        .outstanding
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
            (cur < capacity).then_some(cur + 1)
        });
    if reserved.is_err() {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::Rejected {
            retry_after_ms: retry_hint(shared),
            reason: format!("admission queue full ({capacity} jobs outstanding)"),
        };
    }
    let token = if deadline_ms > 0 {
        CancelToken::with_deadline(Instant::now() + Duration::from_millis(deadline_ms))
    } else {
        CancelToken::new()
    };
    let job_id = {
        let mut core = shared.core.lock().expect("core lock");
        let job_id = core.next_job_id;
        core.next_job_id += 1;
        core.jobs.insert(
            job_id,
            JobRecord {
                phase: JobPhase::Queued,
                token: token.clone(),
                slot_released: false,
            },
        );
        job_id
    };
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    let job_shared = Arc::clone(shared);
    let submitted = shared
        .pool
        .execute(move || run_job(&job_shared, job_id, trace_id, &segmenter, &token, drift));
    if !submitted {
        // Pool already shutting down (race with shutdown): undo.
        finish_job(shared, job_id, JobPhase::Cancelled);
        shared.counters.accepted.fetch_sub(1, Ordering::Relaxed);
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::Rejected {
            retry_after_ms: 0,
            reason: "shutting down".to_string(),
        };
    }
    Response::JobAccepted { job_id }
}

/// Backoff hint: the mean observed job wall time scaled by the current
/// depth over the worker count, floored at 100 ms.
fn retry_hint(shared: &Arc<Shared>) -> u64 {
    let count = shared.counters.job_count.load(Ordering::Relaxed);
    let avg_ms = shared
        .counters
        .job_wall_ns
        .load(Ordering::Relaxed)
        .checked_div(count)
        .map_or(500, |per_job_ns| per_job_ns / 1_000_000);
    let depth = shared.outstanding.load(Ordering::Acquire) as u64;
    let workers = shared.config.workers.max(1) as u64;
    (avg_ms * depth.max(1)).div_ceil(workers).max(100)
}

/// Terminal transition: record the phase, free the admission slot
/// exactly once, bump the outcome counter, expire the oldest terminal
/// records beyond the configured history.
fn finish_job(shared: &Arc<Shared>, job_id: u64, phase: JobPhase) {
    let counter = match &phase {
        JobPhase::Done(_) => &shared.counters.completed,
        JobPhase::Failed(_) => &shared.counters.failed,
        JobPhase::Cancelled => &shared.counters.cancelled,
        JobPhase::Queued | JobPhase::Running => unreachable!("not a terminal phase"),
    };
    let mut core = shared.core.lock().expect("core lock");
    let Some(job) = core.jobs.get_mut(&job_id) else {
        return;
    };
    let release = !job.slot_released;
    job.slot_released = true;
    // Counters and the slot release happen before the terminal phase
    // becomes visible (phase reads take this lock): a client that
    // polls its job to `Done` and immediately asks for `Stats` must
    // see the completion counted and the queue slot freed.
    if release {
        shared.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
    counter.fetch_add(1, Ordering::Relaxed);
    job.phase = phase;
    prune_job_history(&mut core, shared.config.job_history);
}

/// Keeps at most `history` terminal job records (queued and running
/// jobs are never touched), evicting oldest-first so the table — and
/// the reports it retains — cannot grow without bound over a daemon's
/// lifetime. [`query_report`] answers "unknown job" for expired ids.
fn prune_job_history(core: &mut Core, history: usize) {
    // Floor of one: the record being finished right now must survive
    // long enough to be queried.
    let history = history.max(1);
    let mut terminal: Vec<u64> = core
        .jobs
        .iter()
        .filter(|(_, j)| {
            matches!(
                j.phase,
                JobPhase::Done(_) | JobPhase::Failed(_) | JobPhase::Cancelled
            )
        })
        .map(|(id, _)| *id)
        .collect();
    if terminal.len() <= history {
        return;
    }
    terminal.sort_unstable();
    for id in &terminal[..terminal.len() - history] {
        core.jobs.remove(id);
    }
}

/// The analysis worker body: check out (or create) the warm session,
/// drive the stages under per-stage timing, render the canonical
/// report, check the session back in.
fn run_job(
    shared: &Arc<Shared>,
    job_id: u64,
    trace_id: u64,
    segmenter: &str,
    token: &CancelToken,
    drift: bool,
) {
    let started = Instant::now();
    let session_key = (trace_id, segmenter.to_string());
    // One critical section: Queued → Running (unless the job was
    // cancelled while queued — its slot is already free then) and the
    // session checkout, so a job observed `Running` has definitely
    // captured its trace snapshot and generation.
    let (mut session, generation) = {
        let mut core = shared.core.lock().expect("core lock");
        match core.jobs.get_mut(&job_id) {
            Some(job) if matches!(job.phase, JobPhase::Queued) => {
                if job.token.is_cancelled() {
                    drop(core);
                    finish_job(shared, job_id, JobPhase::Cancelled);
                    return;
                }
                job.phase = JobPhase::Running;
            }
            _ => return,
        }
        let checked_out = core.sessions.remove(&session_key);
        let Some(entry) = core.traces.get(&trace_id) else {
            drop(core);
            finish_job(
                shared,
                job_id,
                JobPhase::Failed(format!("unknown trace {trace_id}")),
            );
            return;
        };
        let generation = entry.generation;
        // A parked session predating the trace's generation is stale
        // (append_messages drops those, so this is belt-and-braces);
        // otherwise warm-start a fresh one on the shared store.
        let session = match checked_out {
            Some(warm) if warm.generation == generation => warm.session,
            _ => {
                let mut config = FieldTypeClusterer::default();
                if shared.config.threads > 0 {
                    config.threads = shared.config.threads;
                }
                config.neighbor_backend = shared.config.neighbor_backend;
                let mut s = AnalysisSession::from_owned(entry.prepared.clone(), config);
                if let Some(store) = &shared.store {
                    s.set_store(store.clone());
                }
                s
            }
        };
        (session, generation)
    };
    if shared.config.worker_delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(shared.config.worker_delay_ms));
    }
    session.set_cancel_token(token.clone());
    let mut local_wall: Vec<(String, u64)> = Vec::new();
    // Session counters are cumulative (warm sessions serve many jobs);
    // the daemon totals accumulate per-job deltas.
    let (evals0, pruned0, skipped0) = session.neighbor_counters();
    let phase = drive_stages(shared, &mut session, segmenter, &mut local_wall);
    let (evals1, pruned1, skipped1) = session.neighbor_counters();
    let c = &shared.counters;
    c.kernel_evals
        .fetch_add(evals1.saturating_sub(evals0), Ordering::Relaxed);
    c.pruned_candidates
        .fetch_add(pruned1.saturating_sub(pruned0), Ordering::Relaxed);
    c.strata_skipped
        .fetch_add(skipped1.saturating_sub(skipped0), Ordering::Relaxed);
    // A streamed batch that produced a report also feeds the trace's
    // drift history: snapshot the clustering (cached — `finish` after
    // `drive_stages` re-reads staged artifacts) and compare it to the
    // previous batch's.
    if drift && matches!(phase, JobPhase::Done(_)) {
        if let Ok(result) = session.finish() {
            let snapshot = ingest::ClusterSnapshot::from_result(&result);
            let store_stats = shared.store.as_ref().map(|s| s.stats());
            let mut core = shared.core.lock().expect("core lock");
            if let Some(entry) = core.traces.get_mut(&trace_id) {
                let delta = entry.drift.observe(snapshot);
                entry.drift_history.push(ingest::DriftRecord {
                    batch: entry.drift_history.len() as u64,
                    messages: entry.prepared.len() as u64,
                    seen: entry.raw.len() as u64,
                    unique_segments: result.store.segments.len() as u64,
                    clusters: u64::from(result.clustering.n_clusters()),
                    noise: result.clustering.noise().len() as u64,
                    delta,
                    stage_walls_us: local_wall
                        .iter()
                        .map(|(name, ns)| (name.clone(), ns / 1_000))
                        .collect(),
                    wall_us: started.elapsed().as_micros() as u64,
                    store_hits: store_stats.as_ref().map_or(0, |s| s.hits),
                    store_misses: store_stats.as_ref().map_or(0, |s| s.misses),
                    // FSM drift is the streaming frontend's concern
                    // (`StreamSession` with `fsm: true`); daemon drift
                    // history tracks the clustering partition only.
                    fsm: None,
                });
            }
        }
    }
    // Check the session back in whatever happened: cached artifacts
    // make the retry (or the next job) cheap. Unless the trace grew
    // while we ran — a re-parked pre-append session would silently
    // serve reports missing the appended messages, so it is dropped
    // (its artifacts survive in the shared store).
    check_in_session(shared, session_key, session, generation);
    finish_job(shared, job_id, phase);
    shared
        .counters
        .job_wall_ns
        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    shared.counters.job_count.fetch_add(1, Ordering::Relaxed);
}

/// Parks a session for reuse, unless the trace's generation moved while
/// it was checked out (a stale session must never serve a post-append
/// request), then evicts the least recently used session beyond the
/// configured capacity.
fn check_in_session(
    shared: &Arc<Shared>,
    session_key: (u64, String),
    session: AnalysisSession<'static>,
    generation: u64,
) {
    let mut core = shared.core.lock().expect("core lock");
    let current = core.traces.get(&session_key.0).map(|e| e.generation);
    if current != Some(generation) {
        return;
    }
    core.use_counter += 1;
    let stamp = core.use_counter;
    core.sessions.insert(
        session_key,
        WarmSession {
            session,
            generation,
            last_used: stamp,
        },
    );
    if core.sessions.len() > shared.config.sessions.max(1) {
        if let Some(oldest) = core
            .sessions
            .iter()
            .min_by_key(|(_, w)| w.last_used)
            .map(|(k, _)| k.clone())
        {
            core.sessions.remove(&oldest);
            shared
                .counters
                .session_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs each pipeline stage under its own wall-time bucket, then the
/// shared canonical report (which re-uses every staged artifact).
/// Returns the job's terminal phase.
fn drive_stages(
    shared: &Arc<Shared>,
    session: &mut AnalysisSession<'static>,
    segmenter: &str,
    local_wall: &mut Vec<(String, u64)>,
) -> JobPhase {
    // Each stage lands in two buckets: the daemon-wide cumulative wall
    // (served by `Stats`) and the caller's per-job vector (drift
    // records need this batch's walls, not the lifetime totals).
    let mut timed = |name: &str, elapsed: Duration| {
        let ns = elapsed.as_nanos() as u64;
        local_wall.push((name.to_string(), ns));
        let mut wall = shared.stage_wall.lock().expect("stage wall lock");
        match wall.iter_mut().find(|(s, _)| s == name) {
            Some((_, total)) => *total += ns,
            None => wall.push((name.to_string(), ns)),
        }
    };
    let phase_of = |e: PipelineError| match e {
        PipelineError::Cancelled => JobPhase::Cancelled,
        other => JobPhase::Failed(other.to_string()),
    };
    if session.segmentation().is_none() {
        let seg = match build_segmenter(segmenter) {
            Ok(s) => s,
            Err(message) => return JobPhase::Failed(message),
        };
        let t = Instant::now();
        if let Err(e) = session.segment_with(seg.as_ref()) {
            return JobPhase::Failed(format!("segmentation failed: {e}"));
        }
        timed("segment", t.elapsed());
    }
    // Cancellation is polled at each of these stage boundaries.
    let t = Instant::now();
    if let Err(e) = session.store().map(|_| ()) {
        return phase_of(e);
    }
    timed("dedup", t.elapsed());
    // The matrix and neighbor builds get separate wall buckets: the
    // matrix stage is the O(u²) pairwise build, the neighbors stage the
    // backend's acceleration structure (index sort, vptree forest, or
    // stratified per-length forests). Under the vptree and stratified
    // backends no matrix exists, so that bucket stays untouched and the
    // whole build cost lands under "neighbors".
    let backend = match session.resolved_neighbor_backend() {
        Ok(b) => b,
        Err(e) => return phase_of(e),
    };
    if !matches!(
        backend,
        NeighborBackend::Vptree | NeighborBackend::Stratified
    ) {
        let t = Instant::now();
        if let Err(e) = session.matrix().map(|_| ()) {
            return phase_of(e);
        }
        timed("matrix", t.elapsed());
    }
    let t = Instant::now();
    if let Err(e) = session.ensure_neighbors() {
        return phase_of(e);
    }
    timed("neighbors", t.elapsed());
    let t = Instant::now();
    if let Err(e) = session.autoconf().map(|_| ()) {
        return phase_of(e);
    }
    timed("autoconf", t.elapsed());
    let t = Instant::now();
    if let Err(e) = session.refine().map(|_| ()) {
        return phase_of(e);
    }
    timed("cluster", t.elapsed());
    let t = Instant::now();
    // The trace is cloned out so the report borrows don't fight the
    // session's `&mut` receiver methods.
    let trace = session.trace().clone();
    match standard_report(&trace, session) {
        Ok(report) => {
            timed("report", t.elapsed());
            JobPhase::Done(report)
        }
        Err(e) => phase_of(e),
    }
}

fn query_report(shared: &Arc<Shared>, job_id: u64) -> Response {
    let core = shared.core.lock().expect("core lock");
    let Some(job) = core.jobs.get(&job_id) else {
        return Response::Error {
            message: format!("unknown job {job_id}"),
        };
    };
    let state = match &job.phase {
        JobPhase::Queued => JobState::Queued {
            position: core
                .jobs
                .iter()
                .filter(|(id, j)| **id < job_id && matches!(j.phase, JobPhase::Queued))
                .count() as u64,
        },
        JobPhase::Running => JobState::Running,
        JobPhase::Done(report) => JobState::Done {
            report: report.clone().into_bytes(),
        },
        JobPhase::Failed(message) => JobState::Failed {
            message: message.clone(),
        },
        JobPhase::Cancelled => JobState::Cancelled,
    };
    Response::JobStatus { job_id, state }
}

fn cancel_job(shared: &Arc<Shared>, job_id: u64) -> Response {
    let freed_queued = {
        let mut core = shared.core.lock().expect("core lock");
        let Some(job) = core.jobs.get_mut(&job_id) else {
            return Response::Error {
                message: format!("unknown job {job_id}"),
            };
        };
        job.token.cancel();
        match job.phase {
            JobPhase::Queued => {
                // Free the slot now — the worker will observe the
                // tripped token and skip; admission can refill
                // immediately.
                job.phase = JobPhase::Cancelled;
                let release = !job.slot_released;
                job.slot_released = true;
                // This terminal transition bypasses finish_job (the
                // worker skips the job without one), so the history
                // cap is enforced here as well.
                prune_job_history(&mut core, shared.config.job_history);
                release
            }
            // Running jobs release their slot when the worker observes
            // the token at the next stage boundary.
            _ => false,
        }
    };
    if freed_queued {
        shared.outstanding.fetch_sub(1, Ordering::AcqRel);
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    query_report(shared, job_id)
}

fn stats(shared: &Arc<Shared>) -> ServerStats {
    let (traces, warm_sessions) = {
        let core = shared.core.lock().expect("core lock");
        (core.traces.len() as u64, core.sessions.len() as u64)
    };
    let (cache_hits, cache_misses, cache_writes, cache_mmap_reads) = match &shared.store {
        Some(store) => {
            let s = store.stats();
            (s.hits, s.misses, s.writes, s.mmap_reads)
        }
        None => (0, 0, 0, 0),
    };
    ServerStats {
        jobs_accepted: shared.counters.accepted.load(Ordering::Relaxed),
        jobs_rejected: shared.counters.rejected.load(Ordering::Relaxed),
        jobs_cancelled: shared.counters.cancelled.load(Ordering::Relaxed),
        jobs_completed: shared.counters.completed.load(Ordering::Relaxed),
        jobs_failed: shared.counters.failed.load(Ordering::Relaxed),
        queue_depth: shared.outstanding.load(Ordering::Acquire) as u64,
        traces,
        warm_sessions,
        cache_hits,
        cache_misses,
        cache_writes,
        cache_mmap_reads,
        peak_rss_bytes: peak_rss_bytes(),
        session_capacity: shared.config.sessions.max(1) as u64,
        session_evictions: shared.counters.session_evictions.load(Ordering::Relaxed),
        stream_batches: shared.counters.stream_batches.load(Ordering::Relaxed),
        kernel_evals: shared.counters.kernel_evals.load(Ordering::Relaxed),
        pruned_candidates: shared.counters.pruned_candidates.load(Ordering::Relaxed),
        strata_skipped: shared.counters.strata_skipped.load(Ordering::Relaxed),
        stage_wall_ns: shared.stage_wall.lock().expect("stage wall lock").clone(),
    }
}

fn shutdown(shared: &Arc<Shared>) -> Response {
    shared.accepting.store(false, Ordering::Release);
    let drained = shared.outstanding.load(Ordering::Acquire) as u64;
    Response::ShuttingDown { drained }
}

/// Second half of shutdown, run after the ack frame has been written:
/// flag the accept loop and unblock it with a self-connection; it
/// stops accepting and waits for the drain.
fn trigger_shutdown(shared: &Arc<Shared>) {
    shared.shutdown_requested.store(true, Ordering::Release);
    let _ = TcpStream::connect(shared.addr);
}
