#![warn(missing_docs)]
//! `ftcd`: a long-running analysis daemon for the field type clustering
//! pipeline, plus the client it is spoken to with.
//!
//! The offline CLI pays the full pipeline cost per invocation; the
//! daemon amortizes it. It keeps preprocessed traces and warm
//! [`AnalysisSession`](fieldclust::AnalysisSession)s in memory, shares
//! one artifact store across jobs, and serves a small framed binary
//! protocol over loopback TCP:
//!
//! * [`wire`] — the frame: `FTCW | version | kind | len | payload |
//!   fnv64`, reusing the store's codec and checksum conventions.
//! * [`proto`] — the request/response vocabulary: `SubmitTrace`,
//!   `AppendMessages`, `Analyze`, `QueryReport`, `CancelJob`, `Stats`,
//!   `Shutdown`, plus the streaming pair `StreamTrace`/`DriftReport`
//!   whose chunked uploads keep a batch from being bounded by one
//!   frame.
//! * [`prepare`] — the single trace-loading path shared with the
//!   offline CLI, which is what makes daemon reports **byte-identical**
//!   to `fieldclust analyze --report` on the same capture.
//! * [`daemon`] — listener, session manager, bounded admission queue
//!   with reject-and-retry backpressure, per-job deadlines and
//!   cooperative cancellation, graceful draining shutdown.
//! * [`client`] — a blocking typed client.
//!
//! See DESIGN.md §"Serving" for the protocol layout, the session
//! manager's lifecycle, and the backpressure semantics.

pub mod client;
pub mod daemon;
pub mod prepare;
pub mod proto;
pub mod wire;

pub use client::{Client, ClientError, StateMachineReport, StreamProgress, STREAM_CHUNK_BYTES};
pub use daemon::{start, ServerConfig, ServerHandle};
pub use prepare::{build_segmenter, peak_rss_bytes, prepare_trace, preprocess, PrepareOpts};
pub use proto::{JobState, Request, Response, ServerStats};
pub use wire::{WireError, MAX_FRAME, WIRE_VERSION};
