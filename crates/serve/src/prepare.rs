//! Compatibility shim: the shared trace-preparation path moved to
//! [`ingest::prep`] so the streaming pipeline can use it without a
//! dependency cycle (`serve` depends on `ingest`, not the other way
//! around). Everything here is a re-export; `serve::prepare_trace` and
//! friends — and the tests that moved with the module — keep working
//! unchanged for the CLI, the daemon and downstream crates.

pub use ingest::prep::{build_segmenter, peak_rss_bytes, prepare_trace, preprocess, PrepareOpts};
