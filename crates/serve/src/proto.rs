//! The `ftcd` request/response vocabulary and its payload codec.
//!
//! One request frame in, one response frame out, on a persistent
//! connection. Payloads are encoded with the store's little-endian
//! codec (`store::codec`), so the daemon's wire format and its cache
//! files share one set of primitives. Request kind tags live below
//! `0x80`, response tags at `0x80` and above; [`JobState`] is nested
//! inside [`Response::JobStatus`] under its own sub-tag.
//!
//! Anything that does not decode exactly — unknown tag, short payload,
//! trailing bytes, non-UTF-8 string — is a structured
//! [`WireError::Malformed`] / [`WireError::UnknownKind`], never a
//! panic and never a guess.

use crate::wire::WireError;
use store::codec::{Reader, Writer};

/// A client-to-daemon request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Upload a capture; the daemon parses and preprocesses it exactly
    /// like the offline CLI (sniffed pcap/pcapng, optional NBSS
    /// reassembly, de-duplication, optional port filter and truncation)
    /// so later reports are byte-identical to offline runs.
    SubmitTrace {
        /// Display label for stats and logs (the trace itself is named
        /// `capture`, matching the offline CLI's loader).
        label: String,
        /// Raw pcap or pcapng bytes.
        pcap: Vec<u8>,
        /// Keep only messages with this source or destination port.
        port: Option<u16>,
        /// Truncate to this many messages after preprocessing.
        max: Option<u64>,
        /// Reassemble TCP streams with NBSS framing before
        /// preprocessing.
        reassemble: bool,
    },
    /// Append another capture's messages to an existing trace; the
    /// preprocessor re-runs over the concatenation, and analyses
    /// warm-start from cached prefix artifacts (tile-append growth).
    AppendMessages {
        /// Trace to grow.
        trace_id: u64,
        /// Raw pcap or pcapng bytes to append.
        pcap: Vec<u8>,
    },
    /// Enqueue a full analysis of a submitted trace.
    Analyze {
        /// Trace to analyze.
        trace_id: u64,
        /// Segmenter spec (`nemesys` | `netzob` | `csp` | `fixed`).
        segmenter: String,
        /// Cooperative deadline in milliseconds from acceptance;
        /// `0` means none.
        deadline_ms: u64,
    },
    /// Fetch a job's state (and its report once done).
    QueryReport {
        /// Job to query.
        job_id: u64,
    },
    /// Cancel a queued or running job. Queued jobs free their admission
    /// slot immediately; running jobs stop at the next stage boundary.
    CancelJob {
        /// Job to cancel.
        job_id: u64,
    },
    /// Fetch the daemon's counters.
    Stats,
    /// Stop accepting work, drain in-flight jobs, exit.
    Shutdown,
    /// Chunked streaming ingestion. Capture bytes arrive in chunks so a
    /// long-running stream is never bounded by one `MAX_FRAME` buffer;
    /// a chunk with `commit` set closes the batch: the daemon parses
    /// the buffered capture, creates the stream's trace (first batch)
    /// or appends to it (warm growth), and admits a drift-tracked
    /// analysis under `segmenter` through normal admission control.
    StreamTrace {
        /// Stream to continue, or 0 to open a new stream.
        stream_id: u64,
        /// Display label (used when the first batch creates the trace).
        label: String,
        /// Capture bytes to buffer (may be empty on a bare commit).
        chunk: Vec<u8>,
        /// Close the batch and enqueue its analysis.
        commit: bool,
        /// Segmenter spec for the committed batch's analysis.
        segmenter: String,
    },
    /// Fetch the per-batch drift history of a streamed trace.
    DriftReport {
        /// Trace whose drift history to return.
        trace_id: u64,
    },
    /// Infer the protocol state machine of a submitted trace: cluster
    /// its messages into pseudo message types, group them into flows,
    /// and merge the per-flow label sequences into a deterministic
    /// automaton. Served from the warm session / artifact store when
    /// the machine was inferred before — warm runs rebuild nothing.
    InferStateMachine {
        /// Trace whose state machine to infer.
        trace_id: u64,
        /// Segmenter spec (`nemesys` | `netzob` | `csp` | `fixed`).
        segmenter: String,
        /// Cooperative deadline in milliseconds from acceptance;
        /// `0` means none.
        deadline_ms: u64,
    },
}

/// Where a job currently is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker; `position` jobs are queued ahead of it.
    Queued {
        /// Queued jobs ahead of this one.
        position: u64,
    },
    /// A worker is driving its stages.
    Running,
    /// Finished; the full Markdown report.
    Done {
        /// UTF-8 Markdown report bytes.
        report: Vec<u8>,
    },
    /// The analysis failed.
    Failed {
        /// Human-readable failure.
        message: String,
    },
    /// Cancelled by request or deadline.
    Cancelled,
}

/// A daemon-to-client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submitted or grown trace, after preprocessing.
    TraceAccepted {
        /// Handle for later requests.
        trace_id: u64,
        /// Messages surviving preprocessing.
        messages: u64,
    },
    /// The analysis was admitted to the queue.
    JobAccepted {
        /// Handle for `QueryReport` / `CancelJob`.
        job_id: u64,
    },
    /// Admission control refused the job; try again after the hint.
    Rejected {
        /// Suggested client-side backoff.
        retry_after_ms: u64,
        /// Why (queue full, shutting down, …).
        reason: String,
    },
    /// A job's current state.
    JobStatus {
        /// The queried job.
        job_id: u64,
        /// Its state.
        state: JobState,
    },
    /// The daemon's counters.
    StatsReport(ServerStats),
    /// Shutdown acknowledged; the daemon drains and exits.
    ShuttingDown {
        /// In-flight jobs being drained.
        drained: u64,
    },
    /// The request could not be served (unknown id, parse failure, …).
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// A `StreamTrace` chunk (or commit) was applied.
    StreamAccepted {
        /// The stream's handle (fresh on open).
        stream_id: u64,
        /// The stream's trace, 0 until the first commit creates it.
        trace_id: u64,
        /// Capture bytes currently buffered, after this chunk.
        buffered: u64,
        /// Batches committed so far on this stream.
        batches: u64,
        /// Job admitted by this commit, 0 when none was.
        job_id: u64,
    },
    /// Per-batch drift records of a streamed trace, oldest first.
    DriftHistory {
        /// The queried trace.
        trace_id: u64,
        /// One record per committed batch.
        records: Vec<ingest::DriftRecord>,
    },
    /// The inferred protocol state machine of a trace, carrying the
    /// daemon's canonical renderings so every frontend emits
    /// byte-identical exports.
    StateMachine {
        /// The queried trace.
        trace_id: u64,
        /// States of the machine.
        states: u64,
        /// Transitions of the machine.
        transitions: u64,
        /// Flows the machine was inferred from.
        flows: u64,
        /// Deterministic Graphviz DOT rendering (UTF-8).
        dot: Vec<u8>,
        /// Deterministic JSON rendering (UTF-8).
        json: Vec<u8>,
    },
}

/// A snapshot of the daemon's counters, served by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Analyses admitted to the queue.
    pub jobs_accepted: u64,
    /// Analyses refused by admission control.
    pub jobs_rejected: u64,
    /// Analyses cancelled (by request or deadline).
    pub jobs_cancelled: u64,
    /// Analyses finished with a report.
    pub jobs_completed: u64,
    /// Analyses that failed.
    pub jobs_failed: u64,
    /// Jobs currently queued or running.
    pub queue_depth: u64,
    /// Traces held by the session manager.
    pub traces: u64,
    /// Warm `AnalysisSession`s parked for reuse.
    pub warm_sessions: u64,
    /// Artifact-store hits (0 without `--cache-dir`).
    pub cache_hits: u64,
    /// Artifact-store misses.
    pub cache_misses: u64,
    /// Artifact-store writes.
    pub cache_writes: u64,
    /// Artifact-store reads served zero-copy through a memory mapping
    /// (0 without `--cache-dir`, with `--no-mmap`, or on platforms
    /// without the mmap read path).
    pub cache_mmap_reads: u64,
    /// Peak resident set size of the daemon process, in bytes.
    pub peak_rss_bytes: u64,
    /// Configured warm-session capacity (`ftcd --sessions`).
    pub session_capacity: u64,
    /// Warm sessions evicted to stay under capacity.
    pub session_evictions: u64,
    /// Streamed batches committed across all streams.
    pub stream_batches: u64,
    /// Exact dissimilarity-kernel evaluations performed by stratified
    /// neighbor queries (0 on the matrix/tiled/vptree backends).
    pub kernel_evals: u64,
    /// Candidates skipped by the stratified backend's lower bounds
    /// without a kernel evaluation.
    pub pruned_candidates: u64,
    /// Whole length-strata skipped by the penalty-aware lower bound.
    pub strata_skipped: u64,
    /// Cumulative wall time per pipeline stage, nanoseconds.
    pub stage_wall_ns: Vec<(String, u64)>,
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: accepted={} rejected={} cancelled={} completed={} failed={} queued={}",
            self.jobs_accepted,
            self.jobs_rejected,
            self.jobs_cancelled,
            self.jobs_completed,
            self.jobs_failed,
            self.queue_depth,
        )?;
        writeln!(
            f,
            "sessions: traces={} warm={} capacity={} evictions={} cache: hits={} misses={} writes={} mmap_reads={}",
            self.traces,
            self.warm_sessions,
            self.session_capacity,
            self.session_evictions,
            self.cache_hits,
            self.cache_misses,
            self.cache_writes,
            self.cache_mmap_reads,
        )?;
        writeln!(f, "stream_batches={}", self.stream_batches)?;
        writeln!(
            f,
            "neighbors: kernel_evals={} pruned={} strata_skipped={}",
            self.kernel_evals, self.pruned_candidates, self.strata_skipped,
        )?;
        writeln!(f, "peak_rss_bytes={}", self.peak_rss_bytes)?;
        for (stage, ns) in &self.stage_wall_ns {
            writeln!(f, "stage {stage}: {:.3}s", *ns as f64 / 1e9)?;
        }
        Ok(())
    }
}

fn string(w: &mut Writer, s: &str) {
    w.bytes(s.as_bytes());
}

fn read_string(r: &mut Reader<'_>) -> Option<String> {
    String::from_utf8(r.bytes()?.to_vec()).ok()
}

fn opt_u16(w: &mut Writer, v: Option<u16>) {
    match v {
        Some(p) => {
            w.u8(1);
            w.u32(u32::from(p));
        }
        None => w.u8(0),
    }
}

fn read_opt_u16(r: &mut Reader<'_>) -> Option<Option<u16>> {
    match r.u8()? {
        0 => Some(None),
        1 => u16::try_from(r.u32()?).ok().map(Some),
        _ => None,
    }
}

fn opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        Some(n) => {
            w.u8(1);
            w.u64(n);
        }
        None => w.u8(0),
    }
}

fn read_opt_u64(r: &mut Reader<'_>) -> Option<Option<u64>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(r.u64()?)),
        _ => None,
    }
}

impl Request {
    /// The frame kind tag of this request.
    pub fn kind(&self) -> u8 {
        match self {
            Request::SubmitTrace { .. } => 0x01,
            Request::AppendMessages { .. } => 0x02,
            Request::Analyze { .. } => 0x03,
            Request::QueryReport { .. } => 0x04,
            Request::CancelJob { .. } => 0x05,
            Request::Stats => 0x06,
            Request::Shutdown => 0x07,
            Request::StreamTrace { .. } => 0x08,
            Request::DriftReport { .. } => 0x09,
            Request::InferStateMachine { .. } => 0x0a,
        }
    }

    /// Encodes the request payload (pair it with [`Self::kind`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::SubmitTrace {
                label,
                pcap,
                port,
                max,
                reassemble,
            } => {
                string(&mut w, label);
                w.bytes(pcap);
                opt_u16(&mut w, *port);
                opt_u64(&mut w, *max);
                w.u8(u8::from(*reassemble));
            }
            Request::AppendMessages { trace_id, pcap } => {
                w.u64(*trace_id);
                w.bytes(pcap);
            }
            Request::Analyze {
                trace_id,
                segmenter,
                deadline_ms,
            } => {
                w.u64(*trace_id);
                string(&mut w, segmenter);
                w.u64(*deadline_ms);
            }
            Request::QueryReport { job_id } | Request::CancelJob { job_id } => {
                w.u64(*job_id);
            }
            Request::Stats | Request::Shutdown => {}
            Request::StreamTrace {
                stream_id,
                label,
                chunk,
                commit,
                segmenter,
            } => {
                w.u64(*stream_id);
                string(&mut w, label);
                w.bytes(chunk);
                w.u8(u8::from(*commit));
                string(&mut w, segmenter);
            }
            Request::DriftReport { trace_id } => w.u64(*trace_id),
            Request::InferStateMachine {
                trace_id,
                segmenter,
                deadline_ms,
            } => {
                w.u64(*trace_id);
                string(&mut w, segmenter);
                w.u64(*deadline_ms);
            }
        }
        w.into_inner()
    }

    /// Decodes a request from a frame's kind tag and payload.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownKind`] for tags outside the request range,
    /// [`WireError::Malformed`] when the payload does not parse exactly.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let malformed = WireError::Malformed { kind };
        let mut r = Reader::new(payload);
        let request = match kind {
            0x01 => Request::SubmitTrace {
                label: read_string(&mut r).ok_or(malformed.clone())?,
                pcap: r.bytes().ok_or(malformed.clone())?.to_vec(),
                port: read_opt_u16(&mut r).ok_or(malformed.clone())?,
                max: read_opt_u64(&mut r).ok_or(malformed.clone())?,
                reassemble: match r.u8().ok_or(malformed.clone())? {
                    0 => false,
                    1 => true,
                    _ => return Err(malformed),
                },
            },
            0x02 => Request::AppendMessages {
                trace_id: r.u64().ok_or(malformed.clone())?,
                pcap: r.bytes().ok_or(malformed.clone())?.to_vec(),
            },
            0x03 => Request::Analyze {
                trace_id: r.u64().ok_or(malformed.clone())?,
                segmenter: read_string(&mut r).ok_or(malformed.clone())?,
                deadline_ms: r.u64().ok_or(malformed.clone())?,
            },
            0x04 => Request::QueryReport {
                job_id: r.u64().ok_or(malformed.clone())?,
            },
            0x05 => Request::CancelJob {
                job_id: r.u64().ok_or(malformed.clone())?,
            },
            0x06 => Request::Stats,
            0x07 => Request::Shutdown,
            0x08 => Request::StreamTrace {
                stream_id: r.u64().ok_or(malformed.clone())?,
                label: read_string(&mut r).ok_or(malformed.clone())?,
                chunk: r.bytes().ok_or(malformed.clone())?.to_vec(),
                commit: match r.u8().ok_or(malformed.clone())? {
                    0 => false,
                    1 => true,
                    _ => return Err(malformed),
                },
                segmenter: read_string(&mut r).ok_or(malformed.clone())?,
            },
            0x09 => Request::DriftReport {
                trace_id: r.u64().ok_or(malformed.clone())?,
            },
            0x0a => Request::InferStateMachine {
                trace_id: r.u64().ok_or(malformed.clone())?,
                segmenter: read_string(&mut r).ok_or(malformed.clone())?,
                deadline_ms: r.u64().ok_or(malformed.clone())?,
            },
            other => return Err(WireError::UnknownKind { kind: other }),
        };
        if !r.is_at_end() {
            return Err(malformed);
        }
        Ok(request)
    }
}

impl JobState {
    fn encode(&self, w: &mut Writer) {
        match self {
            JobState::Queued { position } => {
                w.u8(0);
                w.u64(*position);
            }
            JobState::Running => w.u8(1),
            JobState::Done { report } => {
                w.u8(2);
                w.bytes(report);
            }
            JobState::Failed { message } => {
                w.u8(3);
                string(w, message);
            }
            JobState::Cancelled => w.u8(4),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => JobState::Queued { position: r.u64()? },
            1 => JobState::Running,
            2 => JobState::Done {
                report: r.bytes()?.to_vec(),
            },
            3 => JobState::Failed {
                message: read_string(r)?,
            },
            4 => JobState::Cancelled,
            _ => return None,
        })
    }
}

impl Response {
    /// The frame kind tag of this response.
    pub fn kind(&self) -> u8 {
        match self {
            Response::TraceAccepted { .. } => 0x81,
            Response::JobAccepted { .. } => 0x82,
            Response::Rejected { .. } => 0x83,
            Response::JobStatus { .. } => 0x84,
            Response::StatsReport(_) => 0x85,
            Response::ShuttingDown { .. } => 0x86,
            Response::Error { .. } => 0x87,
            Response::StreamAccepted { .. } => 0x88,
            Response::DriftHistory { .. } => 0x89,
            Response::StateMachine { .. } => 0x8a,
        }
    }

    /// Encodes the response payload (pair it with [`Self::kind`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::TraceAccepted { trace_id, messages } => {
                w.u64(*trace_id);
                w.u64(*messages);
            }
            Response::JobAccepted { job_id } => w.u64(*job_id),
            Response::Rejected {
                retry_after_ms,
                reason,
            } => {
                w.u64(*retry_after_ms);
                string(&mut w, reason);
            }
            Response::JobStatus { job_id, state } => {
                w.u64(*job_id);
                state.encode(&mut w);
            }
            Response::StatsReport(stats) => {
                w.u64(stats.jobs_accepted);
                w.u64(stats.jobs_rejected);
                w.u64(stats.jobs_cancelled);
                w.u64(stats.jobs_completed);
                w.u64(stats.jobs_failed);
                w.u64(stats.queue_depth);
                w.u64(stats.traces);
                w.u64(stats.warm_sessions);
                w.u64(stats.cache_hits);
                w.u64(stats.cache_misses);
                w.u64(stats.cache_writes);
                w.u64(stats.cache_mmap_reads);
                w.u64(stats.peak_rss_bytes);
                w.u64(stats.session_capacity);
                w.u64(stats.session_evictions);
                w.u64(stats.stream_batches);
                w.u64(stats.kernel_evals);
                w.u64(stats.pruned_candidates);
                w.u64(stats.strata_skipped);
                w.usize(stats.stage_wall_ns.len());
                for (stage, ns) in &stats.stage_wall_ns {
                    string(&mut w, stage);
                    w.u64(*ns);
                }
            }
            Response::ShuttingDown { drained } => w.u64(*drained),
            Response::Error { message } => string(&mut w, message),
            Response::StreamAccepted {
                stream_id,
                trace_id,
                buffered,
                batches,
                job_id,
            } => {
                w.u64(*stream_id);
                w.u64(*trace_id);
                w.u64(*buffered);
                w.u64(*batches);
                w.u64(*job_id);
            }
            Response::DriftHistory { trace_id, records } => {
                w.u64(*trace_id);
                w.usize(records.len());
                for rec in records {
                    rec.encode(&mut w);
                }
            }
            Response::StateMachine {
                trace_id,
                states,
                transitions,
                flows,
                dot,
                json,
            } => {
                w.u64(*trace_id);
                w.u64(*states);
                w.u64(*transitions);
                w.u64(*flows);
                w.bytes(dot);
                w.bytes(json);
            }
        }
        w.into_inner()
    }

    /// Decodes a response from a frame's kind tag and payload.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownKind`] for tags outside the response range,
    /// [`WireError::Malformed`] when the payload does not parse exactly.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let malformed = WireError::Malformed { kind };
        let mut r = Reader::new(payload);
        let response = match kind {
            0x81 => Response::TraceAccepted {
                trace_id: r.u64().ok_or(malformed.clone())?,
                messages: r.u64().ok_or(malformed.clone())?,
            },
            0x82 => Response::JobAccepted {
                job_id: r.u64().ok_or(malformed.clone())?,
            },
            0x83 => Response::Rejected {
                retry_after_ms: r.u64().ok_or(malformed.clone())?,
                reason: read_string(&mut r).ok_or(malformed.clone())?,
            },
            0x84 => Response::JobStatus {
                job_id: r.u64().ok_or(malformed.clone())?,
                state: JobState::decode(&mut r).ok_or(malformed.clone())?,
            },
            0x85 => {
                let mut next = || r.u64();
                let jobs_accepted = next().ok_or(malformed.clone())?;
                let jobs_rejected = next().ok_or(malformed.clone())?;
                let jobs_cancelled = next().ok_or(malformed.clone())?;
                let jobs_completed = next().ok_or(malformed.clone())?;
                let jobs_failed = next().ok_or(malformed.clone())?;
                let queue_depth = next().ok_or(malformed.clone())?;
                let traces = next().ok_or(malformed.clone())?;
                let warm_sessions = next().ok_or(malformed.clone())?;
                let cache_hits = next().ok_or(malformed.clone())?;
                let cache_misses = next().ok_or(malformed.clone())?;
                let cache_writes = next().ok_or(malformed.clone())?;
                let cache_mmap_reads = next().ok_or(malformed.clone())?;
                let peak_rss_bytes = next().ok_or(malformed.clone())?;
                let session_capacity = next().ok_or(malformed.clone())?;
                let session_evictions = next().ok_or(malformed.clone())?;
                let stream_batches = next().ok_or(malformed.clone())?;
                let kernel_evals = next().ok_or(malformed.clone())?;
                let pruned_candidates = next().ok_or(malformed.clone())?;
                let strata_skipped = next().ok_or(malformed.clone())?;
                let n = r.count(9).ok_or(malformed.clone())?;
                let mut stage_wall_ns = Vec::with_capacity(n);
                for _ in 0..n {
                    let stage = read_string(&mut r).ok_or(malformed.clone())?;
                    let ns = r.u64().ok_or(malformed.clone())?;
                    stage_wall_ns.push((stage, ns));
                }
                Response::StatsReport(ServerStats {
                    jobs_accepted,
                    jobs_rejected,
                    jobs_cancelled,
                    jobs_completed,
                    jobs_failed,
                    queue_depth,
                    traces,
                    warm_sessions,
                    cache_hits,
                    cache_misses,
                    cache_writes,
                    cache_mmap_reads,
                    peak_rss_bytes,
                    session_capacity,
                    session_evictions,
                    stream_batches,
                    kernel_evals,
                    pruned_candidates,
                    strata_skipped,
                    stage_wall_ns,
                })
            }
            0x86 => Response::ShuttingDown {
                drained: r.u64().ok_or(malformed.clone())?,
            },
            0x87 => Response::Error {
                message: read_string(&mut r).ok_or(malformed.clone())?,
            },
            0x88 => Response::StreamAccepted {
                stream_id: r.u64().ok_or(malformed.clone())?,
                trace_id: r.u64().ok_or(malformed.clone())?,
                buffered: r.u64().ok_or(malformed.clone())?,
                batches: r.u64().ok_or(malformed.clone())?,
                job_id: r.u64().ok_or(malformed.clone())?,
            },
            0x89 => {
                let trace_id = r.u64().ok_or(malformed.clone())?;
                let n = r.count(100).ok_or(malformed.clone())?;
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(ingest::DriftRecord::decode(&mut r).ok_or(malformed.clone())?);
                }
                Response::DriftHistory { trace_id, records }
            }
            0x8a => Response::StateMachine {
                trace_id: r.u64().ok_or(malformed.clone())?,
                states: r.u64().ok_or(malformed.clone())?,
                transitions: r.u64().ok_or(malformed.clone())?,
                flows: r.u64().ok_or(malformed.clone())?,
                dot: r.bytes().ok_or(malformed.clone())?.to_vec(),
                json: r.bytes().ok_or(malformed.clone())?.to_vec(),
            },
            other => return Err(WireError::UnknownKind { kind: other }),
        };
        if !r.is_at_end() {
            return Err(malformed);
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let decoded = Request::decode(req.kind(), &req.encode()).expect("request roundtrip");
        assert_eq!(decoded, req);
    }

    fn roundtrip_response(resp: Response) {
        let decoded = Response::decode(resp.kind(), &resp.encode()).expect("response roundtrip");
        assert_eq!(decoded, resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::SubmitTrace {
            label: "ntp run".into(),
            pcap: vec![1, 2, 3],
            port: Some(123),
            max: None,
            reassemble: true,
        });
        roundtrip_request(Request::AppendMessages {
            trace_id: 7,
            pcap: vec![],
        });
        roundtrip_request(Request::Analyze {
            trace_id: 7,
            segmenter: "nemesys".into(),
            deadline_ms: 0,
        });
        roundtrip_request(Request::QueryReport { job_id: 9 });
        roundtrip_request(Request::CancelJob { job_id: 9 });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::StreamTrace {
            stream_id: 0,
            label: "live feed".into(),
            chunk: vec![9, 9, 9],
            commit: true,
            segmenter: "nemesys".into(),
        });
        roundtrip_request(Request::DriftReport { trace_id: 3 });
        roundtrip_request(Request::InferStateMachine {
            trace_id: 3,
            segmenter: "nemesys".into(),
            deadline_ms: 1500,
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::TraceAccepted {
            trace_id: 1,
            messages: 50,
        });
        roundtrip_response(Response::JobAccepted { job_id: 2 });
        roundtrip_response(Response::Rejected {
            retry_after_ms: 250,
            reason: "queue full".into(),
        });
        for state in [
            JobState::Queued { position: 3 },
            JobState::Running,
            JobState::Done {
                report: b"# report".to_vec(),
            },
            JobState::Failed {
                message: "too few segments".into(),
            },
            JobState::Cancelled,
        ] {
            roundtrip_response(Response::JobStatus { job_id: 4, state });
        }
        roundtrip_response(Response::StatsReport(ServerStats {
            jobs_accepted: 5,
            stage_wall_ns: vec![("matrix".into(), 1_000_000), ("cluster".into(), 5)],
            ..ServerStats::default()
        }));
        roundtrip_response(Response::ShuttingDown { drained: 2 });
        roundtrip_response(Response::Error {
            message: "unknown trace 9".into(),
        });
        roundtrip_response(Response::StreamAccepted {
            stream_id: 1,
            trace_id: 2,
            buffered: 4096,
            batches: 3,
            job_id: 0,
        });
        roundtrip_response(Response::DriftHistory {
            trace_id: 2,
            records: vec![ingest::DriftRecord {
                batch: 1,
                messages: 80,
                seen: 80,
                unique_segments: 44,
                clusters: 7,
                noise: 2,
                delta: ingest::DriftDelta {
                    ari: 0.5,
                    ami: 0.25,
                    births: 1,
                    deaths: 0,
                    splits: 1,
                    merges: 0,
                },
                stage_walls_us: vec![("segment".into(), 10)],
                wall_us: 99,
                store_hits: 5,
                store_misses: 1,
                fsm: Some(ingest::FsmDelta {
                    states: 4,
                    transitions: 6,
                    states_born: 1,
                    states_died: 0,
                    transitions_born: 2,
                    transitions_died: 1,
                }),
            }],
        });
        roundtrip_response(Response::StatsReport(ServerStats {
            session_capacity: 4,
            session_evictions: 2,
            stream_batches: 6,
            kernel_evals: 1000,
            pruned_candidates: 420,
            strata_skipped: 7,
            ..ServerStats::default()
        }));
        roundtrip_response(Response::StateMachine {
            trace_id: 3,
            states: 7,
            transitions: 9,
            flows: 30,
            dot: b"digraph fsm {}".to_vec(),
            json: b"{\"states\":7}".to_vec(),
        });
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut payload = Request::QueryReport { job_id: 1 }.encode();
        payload.push(0);
        assert_eq!(
            Request::decode(0x04, &payload),
            Err(WireError::Malformed { kind: 0x04 })
        );
    }

    #[test]
    fn unknown_tags_are_structured_errors() {
        assert_eq!(
            Request::decode(0x44, &[]),
            Err(WireError::UnknownKind { kind: 0x44 })
        );
        assert_eq!(
            Response::decode(0x02, &[]),
            Err(WireError::UnknownKind { kind: 0x02 })
        );
    }
}
