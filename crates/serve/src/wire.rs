//! The length-prefixed binary wire framing of the `ftcd` protocol.
//!
//! Every message on the socket — request or response — travels in one
//! frame with the same layout as the store's artifact files
//! (`store::format`), under its own magic:
//!
//! ```text
//! magic "FTCW" | version u32 | kind u8 | payload_len u64 | payload | fnv64 checksum
//! ```
//!
//! All integers are little-endian; the checksum covers everything
//! before it. Unlike the cache — where any damage is a silent miss —
//! the wire rejects loudly: every violation maps to a distinct
//! [`WireError`] so clients can tell a truncated stream from a version
//! skew from a corrupted frame. The corruption suite in
//! `tests/wire_corruption.rs` pins that every single-bit flip and every
//! truncation of a valid frame is rejected with a structured error,
//! mirroring the store's `store_corruption.rs`.

use store::codec::{Reader, Writer};
use store::fnv64;

/// Frame magic: "field type clustering wire".
pub const MAGIC: [u8; 4] = *b"FTCW";

/// Wire protocol version. A daemon and client must agree exactly;
/// mismatch is [`WireError::BadVersion`], never a guess.
pub const WIRE_VERSION: u32 = 1;

/// Upper bound on a frame's payload. Bounds the allocation a malicious
/// or corrupt length prefix can demand before the checksum is checked.
pub const MAX_FRAME: u64 = 64 << 20;

/// Fixed byte length of the frame header (magic, version, kind,
/// payload length).
pub const HEADER_LEN: usize = 4 + 4 + 1 + 8;

/// A structured wire-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Socket-level read/write failure (message carries the OS error).
    Io(String),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The first four bytes are not `FTCW`.
    BadMagic,
    /// The peer speaks another protocol version.
    BadVersion {
        /// Version the peer sent.
        got: u32,
    },
    /// The payload length exceeds [`MAX_FRAME`].
    TooLarge {
        /// Length the header claimed.
        len: u64,
    },
    /// The stream ended inside a frame.
    Truncated,
    /// The checksum over header and payload does not match.
    BadChecksum,
    /// The frame decoded but its payload does not parse as the message
    /// its kind tag claims.
    Malformed {
        /// Kind tag of the offending frame.
        kind: u8,
    },
    /// A kind tag neither side of the protocol defines.
    UnknownKind {
        /// The unrecognized tag.
        kind: u8,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::BadMagic => write!(f, "bad frame magic (not an ftcd peer?)"),
            WireError::BadVersion { got } => {
                write!(f, "wire version mismatch (peer {got}, ours {WIRE_VERSION})")
            }
            WireError::TooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME} byte cap")
            }
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::Malformed { kind } => write!(f, "malformed payload in frame kind {kind}"),
            WireError::UnknownKind { kind } => write!(f, "unknown frame kind {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Frames a payload as a complete wire message.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(&MAGIC);
    w.u32(WIRE_VERSION);
    w.u8(kind);
    w.u64(payload.len() as u64);
    w.raw(payload);
    let checksum = fnv64(w.as_slice());
    w.u64(checksum);
    w.into_inner()
}

/// Decodes one complete frame from a byte buffer, returning
/// `(kind, payload)`. The buffer must hold exactly one frame.
///
/// This is the pure counterpart of [`read_frame`], shared with the
/// property and corruption tests so they can exercise the decoder
/// without a socket.
///
/// # Errors
///
/// Every framing violation maps to its own [`WireError`]; see the
/// variant docs.
pub fn decode_frame(bytes: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(WireError::Truncated);
    }
    let mut r = Reader::new(bytes);
    if r.take(4).ok_or(WireError::Truncated)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u32().ok_or(WireError::Truncated)?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let kind = r.u8().ok_or(WireError::Truncated)?;
    let len = r.u64().ok_or(WireError::Truncated)?;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge { len });
    }
    // Checksum before trusting the payload bytes themselves.
    let framed = HEADER_LEN + len as usize;
    if bytes.len() < framed + 8 {
        return Err(WireError::Truncated);
    }
    if bytes.len() > framed + 8 {
        // Trailing garbage: the frame lies about its own extent.
        return Err(WireError::BadChecksum);
    }
    let stored = u64::from_le_bytes(bytes[framed..framed + 8].try_into().unwrap());
    if fnv64(&bytes[..framed]) != stored {
        return Err(WireError::BadChecksum);
    }
    Ok((kind, &bytes[HEADER_LEN..framed]))
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl std::io::Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(kind, payload))?;
    w.flush()
}

/// Reads one frame from a stream, returning `(kind, payload)`.
///
/// # Errors
///
/// [`WireError::Closed`] on clean EOF before the first header byte;
/// [`WireError::Truncated`] on EOF anywhere inside a frame; the other
/// variants as in [`decode_frame`].
pub fn read_frame(r: &mut impl std::io::Read) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header, true)?;
    let mut hr = Reader::new(&header);
    if hr.take(4).ok_or(WireError::Truncated)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = hr.u32().ok_or(WireError::Truncated)?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let kind = hr.u8().ok_or(WireError::Truncated)?;
    let len = hr.u64().ok_or(WireError::Truncated)?;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge { len });
    }
    let mut rest = vec![0u8; len as usize + 8];
    read_exact_or(r, &mut rest, false)?;
    let (payload, tail) = rest.split_at(len as usize);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    let mut framed = Vec::with_capacity(HEADER_LEN + payload.len());
    framed.extend_from_slice(&header);
    framed.extend_from_slice(payload);
    if fnv64(&framed) != stored {
        return Err(WireError::BadChecksum);
    }
    Ok((kind, payload.to_vec()))
}

/// `read_exact` that distinguishes clean EOF at a frame boundary
/// (`at_boundary`) from EOF mid-frame.
fn read_exact_or(
    r: &mut impl std::io::Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_pure() {
        let frame = encode_frame(7, b"hello daemon");
        assert_eq!(decode_frame(&frame), Ok((7, &b"hello daemon"[..])));
    }

    #[test]
    fn frame_roundtrip_stream() {
        let frame = encode_frame(3, b"");
        let mut cursor = std::io::Cursor::new(frame);
        assert_eq!(read_frame(&mut cursor), Ok((3, Vec::new())));
    }

    #[test]
    fn clean_eof_is_closed_not_truncated() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut empty), Err(WireError::Closed));
        let mut partial = std::io::Cursor::new(vec![b'F']);
        assert_eq!(read_frame(&mut partial), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut frame = encode_frame(1, b"x");
        // Rewrite the length field to something absurd.
        frame[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::TooLarge { len: u64::MAX })
        );
        let mut cursor = std::io::Cursor::new(frame);
        assert_eq!(
            read_frame(&mut cursor),
            Err(WireError::TooLarge { len: u64::MAX })
        );
    }

    #[test]
    fn version_skew_is_explicit() {
        let mut frame = encode_frame(1, b"x");
        frame[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(decode_frame(&frame), Err(WireError::BadVersion { got: 99 }));
    }
}
