//! End-to-end daemon tests over real loopback sockets: byte-identical
//! reports for concurrent clients against the offline pipeline,
//! admission control under load, cancellation freeing its queue slot,
//! and a draining shutdown.

use fieldclust::report::standard_report;
use fieldclust::{AnalysisSession, FieldTypeClusterer, StateMachineConfig};
use protocols::{corpus, Protocol};
use serve::daemon::{start, ServerConfig};
use serve::{build_segmenter, prepare_trace, Client, ClientError, JobState, PrepareOpts};
use std::time::Duration;
use trace::pcap;

fn capture_bytes(protocol: Protocol, n: usize, seed: u64) -> Vec<u8> {
    pcap::write_to_vec(&corpus::build_trace(protocol, n, seed)).expect("write capture")
}

/// The offline reference: what `fieldclust analyze --report` renders for
/// these capture bytes, via the exact shared code path (prepare →
/// segment → stages → canonical report).
fn offline_report(pcap: &[u8], segmenter: &str) -> String {
    let (trace, _) = prepare_trace(pcap, &PrepareOpts::default()).expect("prepare offline");
    let mut session = AnalysisSession::from_owned(trace, FieldTypeClusterer::default());
    let seg = build_segmenter(segmenter).expect("segmenter");
    session
        .segment_with(seg.as_ref())
        .expect("offline segmentation");
    let trace = session.trace().clone();
    standard_report(&trace, &mut session).expect("offline report")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ftcd-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_clients_get_byte_identical_reports() {
    let cache = temp_dir("identical");
    let handle = start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        cache_dir: Some(cache.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();

    let cases = [
        (Protocol::Ntp, 16usize, 11u64),
        (Protocol::Dns, 16, 22),
        (Protocol::Dhcp, 12, 33),
        (Protocol::Nbns, 16, 44),
    ];
    std::thread::scope(|scope| {
        for (protocol, n, seed) in cases {
            let addr = addr.clone();
            scope.spawn(move || {
                let bytes = capture_bytes(protocol, n, seed);
                let expected = offline_report(&bytes, "nemesys");
                let mut client = Client::connect(&addr).expect("connect");
                let (trace_id, messages) = client
                    .submit_trace(&format!("{protocol:?}"), bytes.clone(), None, None, false)
                    .expect("submit");
                assert!(messages > 0);
                let job = client.analyze(trace_id, "nemesys", 0).expect("analyze");
                let state = client
                    .wait_for(job, Duration::from_millis(20))
                    .expect("wait");
                let JobState::Done { report } = state else {
                    panic!("{protocol:?}: expected Done, got {state:?}");
                };
                assert_eq!(
                    String::from_utf8(report).expect("utf8 report"),
                    expected,
                    "{protocol:?}: daemon report must be byte-identical to offline"
                );
                // A second analysis of the same trace reuses the warm
                // session and must render the same bytes again.
                let job = client.analyze(trace_id, "nemesys", 0).expect("re-analyze");
                let JobState::Done { report } = client
                    .wait_for(job, Duration::from_millis(20))
                    .expect("wait again")
                else {
                    panic!("{protocol:?}: re-analysis must finish");
                };
                assert_eq!(String::from_utf8(report).unwrap(), expected);
            });
        }
    });

    let mut client = Client::connect(&addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_accepted, 8, "4 clients × 2 analyses each");
    assert_eq!(stats.jobs_rejected, 0);
    assert_eq!(stats.jobs_completed, 8);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(stats.queue_depth, 0, "all slots released");
    assert_eq!(stats.traces, 4);
    assert!(stats.warm_sessions >= 1, "sessions parked for reuse");
    assert!(stats.cache_writes > 0, "artifacts persisted to --cache-dir");
    assert!(stats.peak_rss_bytes > 0);
    let stages: Vec<&str> = stats
        .stage_wall_ns
        .iter()
        .map(|(s, _)| s.as_str())
        .collect();
    // NEMESYS-segmented corpora are mixed-length, so `auto` resolves
    // the stratified backend: no matrix stage exists — the build cost
    // lands under "neighbors" and the prune counters must move.
    for stage in ["segment", "neighbors", "autoconf", "cluster", "report"] {
        assert!(stages.contains(&stage), "stage {stage} must be timed");
    }
    assert!(
        !stages.contains(&"matrix"),
        "stratified jobs must not build a matrix"
    );
    assert!(
        stats.kernel_evals > 0,
        "stratified queries must count kernel evaluations"
    );
    assert!(
        stats.pruned_candidates > 0,
        "stratified queries must prune candidates"
    );

    client.shutdown().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn full_queue_rejects_with_retry_hint() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        worker_delay_ms: 600,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let bytes = capture_bytes(Protocol::Ntp, 12, 7);
    let (trace_id, _) = client
        .submit_trace("ntp", bytes, None, None, false)
        .expect("submit");

    // Slot 1 of 1: accepted. The worker stalls on worker_delay_ms, so
    // the slot is deterministically still held for the second request.
    let first = client.analyze(trace_id, "nemesys", 0).expect("first job");
    match client.analyze(trace_id, "nemesys", 0) {
        Err(ClientError::Rejected {
            retry_after_ms,
            reason,
        }) => {
            assert!(retry_after_ms >= 100, "retry hint has a floor");
            assert!(reason.contains("queue full"), "reason: {reason}");
        }
        other => panic!("capacity-plus-first client must be rejected, got {other:?}"),
    }

    // Once the first job drains, the slot is free again.
    let state = client
        .wait_for(first, Duration::from_millis(25))
        .expect("wait");
    assert!(matches!(state, JobState::Done { .. }), "got {state:?}");
    let second = client.analyze(trace_id, "nemesys", 0).expect("after drain");
    client
        .wait_for(second, Duration::from_millis(25))
        .expect("second drains");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_accepted, 2);
    assert_eq!(stats.jobs_rejected, 1);
    assert_eq!(stats.queue_depth, 0);

    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn cancelling_a_queued_job_frees_its_slot() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        worker_delay_ms: 600,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let bytes = capture_bytes(Protocol::Dns, 12, 5);
    let (trace_id, _) = client
        .submit_trace("dns", bytes, None, None, false)
        .expect("submit");

    // Job 1 occupies the single worker (stalled); job 2 fills the queue.
    let running = client.analyze(trace_id, "nemesys", 0).expect("job 1");
    let queued = client.analyze(trace_id, "nemesys", 0).expect("job 2");
    assert!(matches!(
        client.analyze(trace_id, "nemesys", 0),
        Err(ClientError::Rejected { .. })
    ));

    // Cancelling the queued job frees its slot immediately…
    let state = client.cancel(queued).expect("cancel");
    assert_eq!(state, JobState::Cancelled);
    // …so a new job is admitted without waiting for the worker.
    let refill = client.analyze(trace_id, "nemesys", 0).expect("refill");

    for job in [running, refill] {
        let state = client
            .wait_for(job, Duration::from_millis(25))
            .expect("wait");
        assert!(matches!(state, JobState::Done { .. }), "got {state:?}");
    }
    assert_eq!(client.query(queued).expect("query"), JobState::Cancelled);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.jobs_accepted, 3);
    assert_eq!(stats.jobs_rejected, 1);
    assert_eq!(stats.queue_depth, 0);

    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn shutdown_drains_in_flight_jobs() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        worker_delay_ms: 400,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let bytes = capture_bytes(Protocol::Ntp, 12, 9);
    let (trace_id, _) = client
        .submit_trace("ntp", bytes, None, None, false)
        .expect("submit");
    let job = client.analyze(trace_id, "nemesys", 0).expect("job");

    // Shutdown arrives on a second connection while the job stalls.
    let mut second = Client::connect(&addr).expect("second connection");
    let drained = second.shutdown().expect("shutdown");
    assert_eq!(drained, 1, "one in-flight job to drain");

    // New work is refused during the drain…
    assert!(matches!(
        second.analyze(trace_id, "nemesys", 0),
        Err(ClientError::Rejected { .. })
    ));
    // …but the first connection still polls its report to completion.
    let state = client
        .wait_for(job, Duration::from_millis(25))
        .expect("wait");
    assert!(matches!(state, JobState::Done { .. }), "got {state:?}");

    // And the daemon exits once drained.
    handle.wait();
}

/// The offline reference for a trace grown by an append: both captures
/// parsed, messages concatenated, then the shared preprocessing and
/// analysis path — exactly what the daemon's `AppendMessages` models.
fn offline_merged_report(a: &[u8], b: &[u8], segmenter: &str) -> String {
    let ta = trace::pcapng::read_any(a, "capture").expect("parse a");
    let tb = trace::pcapng::read_any(b, "capture").expect("parse b");
    let mut messages = ta.messages().to_vec();
    messages.extend(tb.messages().iter().cloned());
    let merged = trace::Trace::new(ta.name(), messages);
    let prepared = serve::preprocess(&merged, &PrepareOpts::default()).expect("preprocess merged");
    let mut session = AnalysisSession::from_owned(prepared, FieldTypeClusterer::default());
    let seg = build_segmenter(segmenter).expect("segmenter");
    session
        .segment_with(seg.as_ref())
        .expect("merged segmentation");
    let trace = session.trace().clone();
    standard_report(&trace, &mut session).expect("merged report")
}

#[test]
fn append_during_running_analyze_never_serves_stale_sessions() {
    // The regression this pins: a job checks its session out, an append
    // grows the trace while the job runs, and the job re-parks the
    // pre-append session at check-in — later analyses would then
    // silently reuse it and return reports missing the appended
    // messages.
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        worker_delay_ms: 400,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let first = capture_bytes(Protocol::Ntp, 12, 61);
    let second = capture_bytes(Protocol::Ntp, 12, 62);
    let (trace_id, before) = client
        .submit_trace("ntp", first.clone(), None, None, false)
        .expect("submit");

    // `Running` is set in the same critical section as the session
    // checkout, so once we observe it the job has definitely captured
    // its pre-append snapshot; the worker then stalls 400 ms, giving
    // the append a deterministic window while the job is in flight.
    let running = client.analyze(trace_id, "nemesys", 0).expect("job 1");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match client.query(running).expect("poll") {
            JobState::Running => break,
            JobState::Queued { .. } if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            other => panic!("expected job 1 to reach Running, got {other:?}"),
        }
    }
    let after = client
        .append_messages(trace_id, second.clone())
        .expect("append while job 1 runs");
    assert!(after > before, "append must grow the prepared trace");

    // Job 1 was admitted before the append: it reports on its snapshot.
    let JobState::Done { report } = client
        .wait_for(running, Duration::from_millis(20))
        .expect("wait job 1")
    else {
        panic!("job 1 must finish");
    };
    assert_eq!(
        String::from_utf8(report).expect("utf8"),
        offline_report(&first, "nemesys"),
        "in-flight job reports on its pre-append snapshot"
    );

    // Job 2 runs after the append: its report must cover the appended
    // messages — byte-identical to an offline run on the merged trace,
    // not a replay of job 1's stale session.
    let grown = client.analyze(trace_id, "nemesys", 0).expect("job 2");
    let JobState::Done { report } = client
        .wait_for(grown, Duration::from_millis(20))
        .expect("wait job 2")
    else {
        panic!("job 2 must finish");
    };
    assert_eq!(
        String::from_utf8(report).expect("utf8"),
        offline_merged_report(&first, &second, "nemesys"),
        "post-append analysis must include the appended messages"
    );

    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn append_errors_leave_the_trace_unchanged() {
    let handle = start(ServerConfig::default()).expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let bytes = capture_bytes(Protocol::Dns, 12, 17);
    let (trace_id, before) = client
        .submit_trace("dns", bytes.clone(), None, None, false)
        .expect("submit");

    // A capture that does not parse is refused without mutating the
    // entry…
    assert!(matches!(
        client.append_messages(trace_id, b"not a capture".to_vec()),
        Err(ClientError::Daemon(_))
    ));
    // …and an append of the same capture dedups to a no-op, proving
    // the entry still holds exactly the original messages.
    let after = client
        .append_messages(trace_id, bytes.clone())
        .expect("duplicate append");
    assert_eq!(after, before, "duplicate messages dedup to a no-op");
    let job = client.analyze(trace_id, "nemesys", 0).expect("analyze");
    let JobState::Done { report } = client
        .wait_for(job, Duration::from_millis(20))
        .expect("wait")
    else {
        panic!("job must finish");
    };
    assert_eq!(
        String::from_utf8(report).expect("utf8"),
        offline_report(&bytes, "nemesys"),
        "trace unchanged after refused and no-op appends"
    );

    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn terminal_job_records_expire_beyond_the_history_cap() {
    let handle = start(ServerConfig {
        job_history: 2,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let bytes = capture_bytes(Protocol::Ntp, 12, 23);
    let (trace_id, _) = client
        .submit_trace("ntp", bytes, None, None, false)
        .expect("submit");

    let mut jobs = Vec::new();
    for _ in 0..3 {
        let job = client.analyze(trace_id, "nemesys", 0).expect("analyze");
        let state = client
            .wait_for(job, Duration::from_millis(20))
            .expect("wait");
        assert!(matches!(state, JobState::Done { .. }), "got {state:?}");
        jobs.push(job);
    }
    // Only the newest two terminal records survive; the oldest report
    // has expired and queries for it answer "unknown job".
    assert!(matches!(
        client.query(jobs[0]),
        Err(ClientError::Daemon(ref m)) if m.contains("unknown job")
    ));
    for &job in &jobs[1..] {
        assert!(matches!(
            client.query(job).expect("query"),
            JobState::Done { .. }
        ));
    }

    client.shutdown().expect("shutdown");
    handle.wait();
}

/// The offline reference for a trace built from several capture
/// batches: all captures parsed, messages concatenated in arrival
/// order, then the shared preprocessing and analysis path — what a
/// fully committed stream must converge to.
fn offline_batched_report(batches: &[Vec<u8>], segmenter: &str) -> String {
    let mut messages = Vec::new();
    let mut name = String::new();
    for bytes in batches {
        let t = trace::pcapng::read_any(bytes, "capture").expect("parse batch");
        name = t.name().to_string();
        messages.extend(t.messages().iter().cloned());
    }
    let merged = trace::Trace::new(&name, messages);
    let prepared = serve::preprocess(&merged, &PrepareOpts::default()).expect("preprocess merged");
    let mut session = AnalysisSession::from_owned(prepared, FieldTypeClusterer::default());
    let seg = build_segmenter(segmenter).expect("segmenter");
    session
        .segment_with(seg.as_ref())
        .expect("batched segmentation");
    let trace = session.trace().clone();
    standard_report(&trace, &mut session).expect("batched report")
}

#[test]
fn streamed_batches_converge_to_the_one_shot_report() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let batches: Vec<Vec<u8>> = [(16usize, 71u64), (12, 72), (16, 73)]
        .iter()
        .map(|&(n, seed)| capture_bytes(Protocol::Ntp, n, seed))
        .collect();

    // Batch 1 goes up in deliberately tiny chunks: two buffering
    // requests, then a commit — the wire path a capture bigger than
    // one frame would take.
    let mid = batches[0].len() / 3;
    let (a, rest) = batches[0].split_at(mid);
    let (b, c) = rest.split_at(mid);
    let opened = client
        .stream(0, "ntp-stream", a.to_vec(), false, "nemesys")
        .expect("open stream");
    assert!(opened.stream_id > 0, "open assigns a stream handle");
    assert_eq!(opened.trace_id, 0, "no trace before the first commit");
    assert_eq!(opened.buffered, a.len() as u64);
    let more = client
        .stream(opened.stream_id, "ntp-stream", b.to_vec(), false, "nemesys")
        .expect("buffer more");
    assert_eq!(more.buffered, (a.len() + b.len()) as u64);
    let committed = client
        .stream(opened.stream_id, "ntp-stream", c.to_vec(), true, "nemesys")
        .expect("commit batch 1");
    assert!(committed.trace_id > 0, "first commit creates the trace");
    assert_eq!(committed.batches, 1);
    assert_eq!(committed.buffered, 0, "commit drains the buffer");
    assert!(committed.job_id > 0, "commit admits an analysis");
    let trace_id = committed.trace_id;
    client
        .wait_for(committed.job_id, Duration::from_millis(20))
        .expect("batch 1 job");

    // Batches 2 and 3 use the chunking helper end-to-end.
    for (i, bytes) in batches[1..].iter().enumerate() {
        let progress = client
            .stream_capture(opened.stream_id, "ntp-stream", bytes, "nemesys")
            .expect("stream batch");
        assert_eq!(progress.trace_id, trace_id, "stream stays on its trace");
        assert_eq!(progress.batches, 2 + i as u64);
        assert!(progress.job_id > 0);
        client
            .wait_for(progress.job_id, Duration::from_millis(20))
            .expect("batch job");
    }

    // The drift history has one record per committed batch, in order,
    // and the first batch reports every cluster as a birth.
    let records = client.drift_report(trace_id).expect("drift history");
    assert_eq!(records.len(), 3, "one drift record per batch");
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.batch as usize, i);
        assert!(r.clusters > 0, "batch {i} found clusters");
        assert!(r.wall_us > 0);
    }
    assert_eq!(
        u64::from(records[0].delta.births),
        records[0].clusters,
        "first batch: every cluster is a birth"
    );
    let monotone = records.windows(2).all(|w| w[1].messages >= w[0].messages);
    assert!(monotone, "admitted messages grow batch over batch");

    // The fully streamed trace renders byte-identically to one offline
    // analysis of all batches concatenated.
    let job = client
        .analyze(trace_id, "nemesys", 0)
        .expect("final analyze");
    let JobState::Done { report } = client
        .wait_for(job, Duration::from_millis(20))
        .expect("final wait")
    else {
        panic!("final analysis must finish");
    };
    assert_eq!(
        String::from_utf8(report).expect("utf8"),
        offline_batched_report(&batches, "nemesys"),
        "streamed trace must converge to the one-shot report"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stats.stream_batches, 3);
    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn session_capacity_evicts_warm_sessions_but_keeps_results_exact() {
    let handle = start(ServerConfig {
        sessions: 1,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let ntp = capture_bytes(Protocol::Ntp, 12, 81);
    let dns = capture_bytes(Protocol::Dns, 12, 82);
    let (ntp_id, _) = client
        .submit_trace("ntp", ntp.clone(), None, None, false)
        .expect("submit ntp");
    let (dns_id, _) = client
        .submit_trace("dns", dns.clone(), None, None, false)
        .expect("submit dns");

    // Analyzing both traces alternately forces the single-slot warm
    // cache to evict on every switch.
    for (trace_id, bytes) in [(ntp_id, &ntp), (dns_id, &dns), (ntp_id, &ntp)] {
        let job = client.analyze(trace_id, "nemesys", 0).expect("analyze");
        let JobState::Done { report } = client
            .wait_for(job, Duration::from_millis(20))
            .expect("wait")
        else {
            panic!("job must finish");
        };
        assert_eq!(
            String::from_utf8(report).expect("utf8"),
            offline_report(bytes, "nemesys"),
            "eviction must never change results, only warmth"
        );
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.session_capacity, 1);
    assert!(
        stats.session_evictions >= 2,
        "each trace switch evicts the other session, got {}",
        stats.session_evictions
    );
    assert!(
        stats.warm_sessions <= 1,
        "never more warm sessions than capacity"
    );

    client.shutdown().expect("shutdown");
    handle.wait();
}

/// The offline reference for `InferStateMachine`: the exact shared code
/// path (prepare → segment → message types → flow sequences → merge),
/// rendered with the machine's own canonical exports.
fn offline_statemachine(pcap: &[u8], segmenter: &str) -> (String, String) {
    let (trace, _) = prepare_trace(pcap, &PrepareOpts::default()).expect("prepare offline");
    let mut session = AnalysisSession::from_owned(trace, FieldTypeClusterer::default());
    let seg = build_segmenter(segmenter).expect("segmenter");
    session
        .segment_with(seg.as_ref())
        .expect("offline segmentation");
    let machine = session
        .state_machine(&StateMachineConfig::default())
        .expect("offline machine");
    (machine.to_dot(), machine.to_json())
}

#[test]
fn state_machine_requests_match_offline_and_warm_runs_rebuild_nothing() {
    let cache = temp_dir("fsm");
    let handle = start(ServerConfig {
        cache_dir: Some(cache.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let bytes = capture_bytes(Protocol::Ntp, 16, 91);
    let (expected_dot, expected_json) = offline_statemachine(&bytes, "nemesys");
    let (trace_id, _) = client
        .submit_trace("ntp", bytes, None, None, false)
        .expect("submit");

    // Cold: the daemon clusters, infers, persists — and its renderings
    // are byte-identical to the offline pipeline's.
    let cold = client
        .infer_statemachine(trace_id, "nemesys", 0)
        .expect("cold inference");
    assert_eq!(cold.trace_id, trace_id);
    assert!(cold.states >= 1, "a machine always has its initial state");
    assert!(cold.flows >= 1, "ntp corpus has at least one flow");
    assert_eq!(String::from_utf8(cold.dot.clone()).unwrap(), expected_dot);
    assert_eq!(String::from_utf8(cold.json.clone()).unwrap(), expected_json);
    let stats_after_cold = client.stats().expect("stats after cold");
    assert!(
        stats_after_cold.cache_writes > 0,
        "cold inference persists artifacts"
    );

    // Warm: the parked session + store serve the machine without a
    // single store miss or write — nothing is rebuilt.
    let warm = client
        .infer_statemachine(trace_id, "nemesys", 0)
        .expect("warm inference");
    assert_eq!(warm.dot, cold.dot, "warm run is byte-identical");
    assert_eq!(warm.json, cold.json);
    let stats_after_warm = client.stats().expect("stats after warm");
    assert_eq!(
        stats_after_warm.cache_misses, stats_after_cold.cache_misses,
        "warm inference misses nothing"
    );
    assert_eq!(
        stats_after_warm.cache_writes, stats_after_cold.cache_writes,
        "warm inference writes nothing"
    );

    // Unknown traces and unknown segmenters decline with structured
    // errors, not hangs or panics.
    assert!(matches!(
        client.infer_statemachine(9999, "nemesys", 0),
        Err(ClientError::Daemon(ref m)) if m.contains("unknown trace")
    ));
    assert!(matches!(
        client.infer_statemachine(trace_id, "no-such-segmenter", 0),
        Err(ClientError::Daemon(ref m)) if m.contains("unknown segmenter")
    ));

    client.shutdown().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn state_machine_deadline_cancels_between_stages_and_retry_resumes() {
    let handle = start(ServerConfig::default()).expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    // Big enough that segmentation alone outlives a 1 ms deadline, so
    // the cancel check between the segment and clustering stages
    // observes the tripped token deterministically.
    let bytes = capture_bytes(Protocol::Ntp, 150, 92);
    let (trace_id, _) = client
        .submit_trace("ntp", bytes, None, None, false)
        .expect("submit");
    match client.infer_statemachine(trace_id, "nemesys", 1) {
        Err(ClientError::Daemon(m)) => {
            assert!(m.contains("cancelled"), "expected a cancel, got: {m}")
        }
        other => panic!("1 ms deadline must cancel the cold inference, got {other:?}"),
    }
    // The cancelled session was checked back in with its completed
    // stages warm; an undeadlined retry resumes and succeeds.
    let retry = client
        .infer_statemachine(trace_id, "nemesys", 0)
        .expect("retry without deadline");
    assert!(retry.states >= 1);
    assert!(!retry.dot.is_empty() && !retry.json.is_empty());
    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn deadline_cancels_a_job_cooperatively() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        worker_delay_ms: 50,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let bytes = capture_bytes(Protocol::Ntp, 16, 3);
    let (trace_id, _) = client
        .submit_trace("ntp", bytes, None, None, false)
        .expect("submit");
    // A 1 ms deadline expires during the worker stall; the first stage
    // boundary observes it and the job lands in Cancelled.
    let job = client.analyze(trace_id, "nemesys", 1).expect("job");
    let state = client
        .wait_for(job, Duration::from_millis(20))
        .expect("wait");
    assert_eq!(state, JobState::Cancelled);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.queue_depth, 0, "deadline cancel frees the slot");
    client.shutdown().expect("shutdown");
    handle.wait();
}
