//! Round-trip and corruption properties of the `ftcd` wire protocol,
//! mirroring the store's `store_corruption.rs`: a valid frame decodes
//! back bit-identically, and *every* damaged variant — any single byte
//! flipped, any truncation, trailing garbage — is rejected with a
//! structured [`WireError`], never a panic and never a wrong decode.

use proptest::prelude::*;
use serve::proto::{JobState, Request, Response, ServerStats};
use serve::wire::{decode_frame, encode_frame, read_frame, WireError, HEADER_LEN};

/// Flips every single byte of `frame` (all eight bit positions at once
/// via XOR with a walking mask) and asserts each mutant is rejected.
/// A flip can never be accepted: magic/version/kind/length flips break
/// the header checks or the checksum, payload flips break the checksum,
/// and checksum flips mismatch the recomputation.
fn assert_every_byte_flip_rejected(frame: &[u8], tag: &str) {
    for i in 0..frame.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bad = frame.to_vec();
            bad[i] ^= mask;
            let err = decode_frame(&bad).expect_err(&format!(
                "{tag}: flipping byte {i} with {mask:#04x} must be rejected"
            ));
            // Structured, not just "some" error: every rejection is one
            // of the framing variants, never Closed/Io (those are
            // stream-level) and never a Malformed (the frame itself is
            // damaged before its payload is ever interpreted).
            assert!(
                matches!(
                    err,
                    WireError::BadMagic
                        | WireError::BadVersion { .. }
                        | WireError::TooLarge { .. }
                        | WireError::Truncated
                        | WireError::BadChecksum
                ),
                "{tag}: byte {i} mask {mask:#04x} gave unexpected {err:?}"
            );
        }
    }
}

/// Asserts every strict prefix of `frame` is rejected as truncated (or,
/// for the degenerate empty stream through `read_frame`, as closed).
fn assert_every_truncation_rejected(frame: &[u8], tag: &str) {
    for cut in 0..frame.len() {
        let bad = &frame[..cut];
        assert_eq!(
            decode_frame(bad),
            Err(WireError::Truncated),
            "{tag}: truncation to {cut} bytes must be Truncated"
        );
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        let expected = if cut == 0 {
            WireError::Closed
        } else {
            WireError::Truncated
        };
        assert_eq!(
            read_frame(&mut cursor),
            Err(expected),
            "{tag}: streamed truncation to {cut} bytes"
        );
    }
}

#[test]
fn every_byte_flip_and_truncation_of_request_frames_rejected() {
    let requests = vec![
        Request::SubmitTrace {
            label: "smb capture".into(),
            pcap: (0u16..200).map(|i| (i % 251) as u8).collect(),
            port: Some(445),
            max: Some(1000),
            reassemble: true,
        },
        Request::AppendMessages {
            trace_id: 3,
            pcap: vec![0xd4, 0xc3, 0xb2, 0xa1],
        },
        Request::Analyze {
            trace_id: 3,
            segmenter: "nemesys".into(),
            deadline_ms: 2500,
        },
        Request::Stats,
        Request::InferStateMachine {
            trace_id: 3,
            segmenter: "nemesys".into(),
            deadline_ms: 750,
        },
    ];
    for request in requests {
        let frame = encode_frame(request.kind(), &request.encode());
        let tag = format!("request kind {:#04x}", request.kind());
        // The intact frame round-trips first.
        let (kind, payload) = decode_frame(&frame).expect("intact frame decodes");
        assert_eq!(Request::decode(kind, payload).unwrap(), request);
        assert_every_byte_flip_rejected(&frame, &tag);
        assert_every_truncation_rejected(&frame, &tag);
    }
}

#[test]
fn every_byte_flip_and_truncation_of_response_frames_rejected() {
    let responses = vec![
        Response::JobStatus {
            job_id: 9,
            state: JobState::Done {
                report: b"# Field type report\n\ncluster 0: uint\n".to_vec(),
            },
        },
        Response::Rejected {
            retry_after_ms: 350,
            reason: "queue full (8 outstanding)".into(),
        },
        Response::StatsReport(ServerStats {
            jobs_accepted: 4,
            queue_depth: 1,
            stage_wall_ns: vec![("matrix".into(), 7_000_000), ("cluster".into(), 9)],
            ..ServerStats::default()
        }),
        Response::StateMachine {
            trace_id: 3,
            states: 7,
            transitions: 9,
            flows: 30,
            dot: b"digraph fsm {\n  0 -> 1 [label=\"type0 (30)\"];\n}\n".to_vec(),
            json: b"{\"states\":7,\"flows\":30}".to_vec(),
        },
    ];
    for response in responses {
        let frame = encode_frame(response.kind(), &response.encode());
        let tag = format!("response kind {:#04x}", response.kind());
        let (kind, payload) = decode_frame(&frame).expect("intact frame decodes");
        assert_eq!(Response::decode(kind, payload).unwrap(), response);
        assert_every_byte_flip_rejected(&frame, &tag);
        assert_every_truncation_rejected(&frame, &tag);
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut frame = encode_frame(0x06, &[]);
    frame.push(0);
    assert_eq!(decode_frame(&frame), Err(WireError::BadChecksum));
}

proptest! {
    /// Any payload under any kind tag frames and decodes back
    /// bit-identically, pure and streamed.
    #[test]
    fn arbitrary_payload_roundtrips(
        kind in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let frame = encode_frame(kind, &payload);
        prop_assert_eq!(frame.len(), HEADER_LEN + payload.len() + 8);
        let (k, p) = decode_frame(&frame).expect("pure decode");
        prop_assert_eq!(k, kind);
        prop_assert_eq!(p, &payload[..]);
        let mut cursor = std::io::Cursor::new(frame);
        let (k, p) = read_frame(&mut cursor).expect("streamed decode");
        prop_assert_eq!(k, kind);
        prop_assert_eq!(p, payload);
    }

    /// Several frames written back-to-back on one stream read out in
    /// order — the framing is self-delimiting.
    #[test]
    fn frames_are_self_delimiting(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..80), 1..6),
    ) {
        let mut stream = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            stream.extend_from_slice(&encode_frame(i as u8, p));
        }
        let mut cursor = std::io::Cursor::new(stream);
        for (i, p) in payloads.iter().enumerate() {
            let (k, got) = read_frame(&mut cursor).expect("frame in sequence");
            prop_assert_eq!(k, i as u8);
            prop_assert_eq!(&got, p);
        }
        prop_assert_eq!(read_frame(&mut cursor), Err(WireError::Closed));
    }

    /// Random request payload mutations never decode into a *different*
    /// valid request: either the decode fails with a structured error,
    /// or the mutation was payload-preserving (it hit padding-free
    /// encodings exactly, which cannot happen — so any Ok must equal
    /// the original).
    #[test]
    fn mutated_request_payloads_never_misdecode(
        job_id in any::<u64>(),
        idx in 0usize..9,
        mask in 1u8..=255,
    ) {
        let request = Request::QueryReport { job_id };
        let mut payload = request.encode();
        prop_assert_eq!(payload.len(), 8);
        if idx < payload.len() {
            payload[idx] ^= mask;
            match Request::decode(0x04, &payload) {
                Ok(Request::QueryReport { job_id: other }) => prop_assert_ne!(other, job_id),
                Ok(other) => prop_assert!(false, "kind 0x04 decoded as {other:?}"),
                Err(e) => prop_assert_eq!(e, WireError::Malformed { kind: 0x04 }),
            }
        } else {
            // Appending a byte instead: strict length check rejects.
            payload.push(mask);
            prop_assert_eq!(
                Request::decode(0x04, &payload),
                Err(WireError::Malformed { kind: 0x04 })
            );
        }
    }
}
