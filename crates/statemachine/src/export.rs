//! Deterministic DOT and JSON renderings of a [`StateMachine`].
//!
//! Both exports are pure functions of the machine — integer counts
//! only, no floats, no timestamps — so the CLI and the daemon render
//! byte-identical artifacts for the same machine, which check.sh and
//! the e2e suite compare with `cmp`.

use crate::machine::StateMachine;

impl StateMachine {
    /// Renders the machine as a Graphviz digraph. States are labelled
    /// with their visit/termination counts, edges with the symbol name
    /// and traversal count; everything is emitted in canonical order.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph fsm {\n  rankdir=LR;\n  node [shape=circle];\n");
        for state in 0..self.n_states {
            let shape = if self.terminations[state as usize] > 0 {
                " shape=doublecircle"
            } else {
                ""
            };
            out.push_str(&format!(
                "  s{state} [label=\"{state}\\nn={} t={}\"{shape}];\n",
                self.visits[state as usize], self.terminations[state as usize]
            ));
        }
        for t in &self.transitions {
            out.push_str(&format!(
                "  s{} -> s{} [label=\"{} ({})\"];\n",
                t.from,
                t.to,
                self.symbol_name(t.symbol),
                t.count
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Renders the machine as one deterministic JSON object
    /// (hand-rolled: integer counts and escaped names only, so the
    /// bytes are reproducible across frontends).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"states\":{},\"initial\":0,\"flows\":{},\"symbols\":[",
            self.n_states, self.flows
        ));
        for (i, s) in self.symbols.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape_json(s)));
        }
        out.push_str("],\"visits\":[");
        push_u64s(&mut out, &self.visits);
        out.push_str("],\"terminations\":[");
        push_u64s(&mut out, &self.terminations);
        out.push_str("],\"transitions\":[");
        for (i, t) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"from\":{},\"symbol\":\"{}\",\"to\":{},\"count\":{}}}",
                t.from,
                escape_json(self.symbol_name(t.symbol)),
                t.to,
                t.count
            ));
        }
        out.push_str("]}");
        out
    }

    /// The name of `symbol`, or a stable fallback for out-of-table ids.
    pub fn symbol_name(&self, symbol: u32) -> &str {
        self.symbols
            .get(symbol as usize)
            .map_or("?", String::as_str)
    }
}

fn push_u64s(out: &mut String, values: &[u64]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::{infer, FsmConfig};

    fn sample() -> crate::StateMachine {
        let seqs = vec![vec![1u32, 2], vec![1, 2], vec![1, 3]];
        infer(
            &seqs,
            vec!["noise".into(), "req".into(), "ok".into(), "err".into()],
            &FsmConfig::default(),
        )
    }

    #[test]
    fn dot_is_stable_and_wellformed() {
        let m = sample();
        let dot = m.to_dot();
        assert_eq!(dot, m.to_dot(), "rendering must be deterministic");
        assert!(dot.starts_with("digraph fsm {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("s0 ->"), "root has outgoing edges");
        assert!(dot.contains("req"), "edges carry symbol names");
    }

    #[test]
    fn json_is_stable_and_carries_structure() {
        let m = sample();
        let json = m.to_json();
        assert_eq!(json, m.to_json());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"initial\":0"));
        assert!(json.contains("\"flows\":3"));
        assert!(json.contains("\"symbol\":\"req\""));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn names_escape_and_fall_back() {
        let seqs = vec![vec![0u32]];
        let m = infer(&seqs, vec!["qu\"ote".into()], &FsmConfig::default());
        assert!(m.to_json().contains("qu\\\"ote"));
        assert_eq!(m.symbol_name(99), "?");
    }
}
