//! Protocol state-machine inference over message-type-labelled flows.
//!
//! The field-type pipeline clusters messages into pseudo message types;
//! this crate closes the reverse-engineering loop by inferring the
//! protocol's *session structure* from those labels. Messages are
//! grouped into flows (endpoint-pair + timestamp ordering, see
//! [`trace::Trace::flows`]), each flow becomes a sequence of cluster
//! labels, and the sequences are folded into a prefix tree acceptor
//! that an Alergia-style evidence-threshold merge compacts into a
//! deterministic finite automaton ([`StateMachine`]).
//!
//! Determinism is structural, not seeded: the PTA is order-invariant,
//! merging scans states in canonical order over `BTreeMap`s, and the
//! final machine is renumbered breadth-first — so the same flows and
//! thresholds reproduce the same machine bit for bit, across thread
//! counts and frontends. The machine persists in the artifact store as
//! [`store::artifacts::Kind::FSM`] and exports deterministic DOT/JSON.

mod export;
mod machine;
mod merge;
mod pta;

pub use machine::{fsm_drift, FsmDelta, FsmSignature, FsmTracker, StateMachine, Transition};

use trace::Trace;

/// Thresholds of the Alergia-style merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsmConfig {
    /// Significance of the Hoeffding frequency test: two states merge
    /// only when every emission/termination frequency difference stays
    /// within the bound for this alpha. Smaller alpha merges more.
    pub alpha: f64,
    /// States visited by fewer flows than this are considered
    /// compatible by default — too little evidence to distinguish.
    pub min_evidence: u64,
}

impl Default for FsmConfig {
    fn default() -> Self {
        FsmConfig {
            alpha: 0.05,
            min_evidence: 3,
        }
    }
}

/// Infers a [`StateMachine`] from symbol sequences (one per flow).
///
/// `symbols` names each symbol id; every id used in `sequences` must be
/// `< symbols.len()`. The result is a pure function of the multiset of
/// sequences and the config — input order never matters.
///
/// # Panics
///
/// When a sequence uses a symbol id outside `symbols`.
pub fn infer(sequences: &[Vec<u32>], symbols: Vec<String>, config: &FsmConfig) -> StateMachine {
    for seq in sequences {
        for &s in seq {
            assert!(
                (s as usize) < symbols.len(),
                "symbol id {s} outside the {}-entry symbol table",
                symbols.len()
            );
        }
    }
    let mut auto = pta::build_pta(sequences);
    merge::merge(&mut auto, config);
    machine::canonicalize(&auto, symbols, sequences.len() as u64)
}

/// Maps a trace plus per-message symbol ids into per-flow sequences,
/// using the canonical flow grouping from [`Trace::flows`].
///
/// # Panics
///
/// When `labels` is shorter than the trace.
pub fn flow_sequences(trace: &Trace, labels: &[u32]) -> Vec<Vec<u32>> {
    assert!(
        labels.len() >= trace.len(),
        "need one label per message: {} labels for {} messages",
        labels.len(),
        trace.len()
    );
    trace
        .flows()
        .into_iter()
        .map(|flow| flow.into_iter().map(|i| labels[i]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use trace::{Direction, Endpoint, Message};

    #[test]
    fn inference_is_order_invariant() {
        let mut seqs: Vec<Vec<u32>> = Vec::new();
        for i in 0..40u32 {
            seqs.push(vec![1, 2, 1 + (i % 3), 3]);
            seqs.push(vec![2]);
        }
        let names: Vec<String> = (0..5).map(|i| format!("type{i}")).collect();
        let forward = infer(&seqs, names.clone(), &FsmConfig::default());
        seqs.reverse();
        let backward = infer(&seqs, names, &FsmConfig::default());
        assert_eq!(forward, backward);
        assert_eq!(forward.to_dot(), backward.to_dot());
        assert_eq!(forward.to_json(), backward.to_json());
    }

    #[test]
    fn empty_input_yields_the_trivial_machine() {
        let m = infer(&[], vec!["noise".into()], &FsmConfig::default());
        assert_eq!(m.n_states, 1);
        assert_eq!(m.n_transitions(), 0);
        assert_eq!(m.flows, 0);
        assert_eq!(m.run_sequence(&[0, 0]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "symbol id")]
    fn out_of_table_symbols_panic() {
        infer(&[vec![7]], vec!["only".into()], &FsmConfig::default());
    }

    #[test]
    fn flow_sequences_follow_the_flow_grouping() {
        let a = Endpoint::udp([10, 0, 0, 1], 1000);
        let b = Endpoint::udp([10, 0, 0, 2], 53);
        let c = Endpoint::udp([10, 0, 0, 3], 2000);
        let msg = |src: Endpoint, dst: Endpoint, ts: u64| {
            Message::builder(Bytes::from_static(b"x"))
                .timestamp_micros(ts)
                .source(src)
                .destination(dst)
                .direction(Direction::Request)
                .build()
        };
        // Two flows interleaved in capture order.
        let trace = Trace::new(
            "t",
            vec![
                msg(a, b, 10), // flow ab, label 1
                msg(c, b, 11), // flow cb, label 2
                msg(b, a, 12), // flow ab (reverse direction), label 3
                msg(b, c, 13), // flow cb, label 4
            ],
        );
        let seqs = flow_sequences(&trace, &[1, 2, 3, 4]);
        assert_eq!(seqs.len(), 2);
        assert!(seqs.contains(&vec![1, 3]), "flow a<->b in time order");
        assert!(seqs.contains(&vec![2, 4]), "flow c<->b in time order");
    }

    #[test]
    fn repeated_request_response_compacts_into_a_small_machine() {
        // The canonical multi-state protocol: hello, then (req, resp)*,
        // then bye. The PTA has O(total messages) states; the merged
        // machine must collapse the repetition into a bounded loop.
        let mut seqs = Vec::new();
        for reps in 1..6usize {
            for _ in 0..6 {
                let mut s = vec![0u32];
                for _ in 0..reps {
                    s.push(1);
                    s.push(2);
                }
                s.push(3);
                seqs.push(s);
            }
        }
        let names = vec!["hello".into(), "req".into(), "resp".into(), "bye".into()];
        let pta_states: usize = 2 + 2 * 5 + 5; // rough lower bound of distinct prefixes
        let m = infer(&seqs, names, &FsmConfig::default());
        assert!(
            (m.n_states as usize) < pta_states,
            "{} states did not compact below {pta_states}",
            m.n_states
        );
        // The machine still accepts a deep run it was trained on.
        let walk = m.run_sequence(&[0, 1, 2, 1, 2, 1, 2, 3]);
        assert_eq!(walk.len(), 9, "trained sequence fully accepted");
    }
}
