//! The immutable [`StateMachine`] artifact: canonical numbering,
//! transition table, execution, drift signatures and the store codec.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use store::artifacts::{Kind, Persist};
use store::codec::{Reader, Writer};

use crate::pta::Automaton;

/// One transition of the inferred machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: u32,
    /// Emitted/consumed symbol.
    pub symbol: u32,
    /// Destination state.
    pub to: u32,
    /// Flows that traversed this transition.
    pub count: u64,
}

/// An inferred protocol state machine.
///
/// States are numbered canonically: breadth-first from the initial
/// state 0, expanding transitions in symbol order — so two inferences
/// over the same flows produce bit-identical machines regardless of
/// thread count or insertion order. `transitions` is sorted by
/// `(from, symbol)` and the machine is deterministic (at most one
/// destination per pair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMachine {
    /// Human-readable symbol names; index = symbol id. Baked into the
    /// artifact so every frontend renders identical exports.
    pub symbols: Vec<String>,
    /// Number of states; state ids are `0..n_states`, initial is 0.
    pub n_states: u32,
    /// Sorted transition table.
    pub transitions: Vec<Transition>,
    /// Per-state visit counts (flows that passed through the state).
    pub visits: Vec<u64>,
    /// Per-state termination counts (flows that ended at the state).
    pub terminations: Vec<u64>,
    /// Flows the machine was inferred from.
    pub flows: u64,
}

impl StateMachine {
    /// Total number of transitions.
    pub fn n_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The destination of `(state, symbol)`, or `None` when undefined.
    pub fn step(&self, state: u32, symbol: u32) -> Option<u32> {
        self.transitions
            .binary_search_by_key(&(state, symbol), |t| (t.from, t.symbol))
            .ok()
            .map(|i| self.transitions[i].to)
    }

    /// Outgoing transitions of `state` — its emission distribution,
    /// as `(symbol, destination, count)` in symbol order.
    pub fn emissions(&self, state: u32) -> Vec<(u32, u32, u64)> {
        let start = self.transitions.partition_point(|t| t.from < state);
        self.transitions[start..]
            .iter()
            .take_while(|t| t.from == state)
            .map(|t| (t.symbol, t.to, t.count))
            .collect()
    }

    /// Runs `symbols` from the initial state, returning the visited
    /// states (starting with 0). Stops at the first undefined
    /// transition, so the result length is `accepted prefix + 1`.
    pub fn run_sequence(&self, symbols: &[u32]) -> Vec<u32> {
        let mut at = 0u32;
        let mut visited = vec![at];
        for &s in symbols {
            match self.step(at, s) {
                Some(next) => {
                    at = next;
                    visited.push(next);
                }
                None => break,
            }
        }
        visited
    }

    /// The shortest access string of every state (lexicographically
    /// least among shortest, by symbol order): a stable identity for
    /// drift comparison across re-inferences, where raw state numbers
    /// are meaningless.
    pub fn access_strings(&self) -> Vec<Vec<u32>> {
        let mut access: Vec<Option<Vec<u32>>> = vec![None; self.n_states as usize];
        access[0] = Some(Vec::new());
        let mut queue = VecDeque::from([0u32]);
        while let Some(state) = queue.pop_front() {
            let prefix = access[state as usize]
                .clone()
                .expect("queued means reached");
            for (symbol, to, _) in self.emissions(state) {
                if access[to as usize].is_none() {
                    let mut p = prefix.clone();
                    p.push(symbol);
                    access[to as usize] = Some(p);
                    queue.push_back(to);
                }
            }
        }
        access
            .into_iter()
            .map(|a| a.expect("all states reachable by construction"))
            .collect()
    }

    /// The drift signature: the set of state access strings and the set
    /// of `(access string, symbol)` transition identities.
    pub fn signature(&self) -> FsmSignature {
        let access = self.access_strings();
        let states: BTreeSet<Vec<u32>> = access.iter().cloned().collect();
        let transitions: BTreeSet<(Vec<u32>, u32)> = self
            .transitions
            .iter()
            .map(|t| (access[t.from as usize].clone(), t.symbol))
            .collect();
        FsmSignature {
            states,
            transitions,
        }
    }
}

/// Builds the canonical [`StateMachine`] from a merged automaton:
/// breadth-first renumbering from the root with transitions expanded in
/// symbol order.
pub(crate) fn canonicalize(auto: &Automaton, symbols: Vec<String>, flows: u64) -> StateMachine {
    let mut id_of: BTreeMap<usize, u32> = BTreeMap::new();
    let mut order: Vec<usize> = Vec::new();
    let mut queue = VecDeque::from([0usize]);
    id_of.insert(0, 0);
    while let Some(node) = queue.pop_front() {
        order.push(node);
        for edge in auto.nodes[node].trans.values() {
            if !id_of.contains_key(&edge.child) {
                let next = id_of.len() as u32;
                id_of.insert(edge.child, next);
                queue.push_back(edge.child);
            }
        }
    }
    let mut transitions = Vec::new();
    let mut visits = Vec::with_capacity(order.len());
    let mut terminations = Vec::with_capacity(order.len());
    for (new_id, &node) in order.iter().enumerate() {
        let n = &auto.nodes[node];
        visits.push(n.visits);
        terminations.push(n.term);
        for (&symbol, edge) in &n.trans {
            transitions.push(Transition {
                from: new_id as u32,
                symbol,
                to: id_of[&edge.child],
                count: edge.count,
            });
        }
    }
    StateMachine {
        symbols,
        n_states: order.len() as u32,
        transitions,
        visits,
        terminations,
        flows,
    }
}

/// The stable identity of a machine for drift comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmSignature {
    /// Shortest access string of every state.
    pub states: BTreeSet<Vec<u32>>,
    /// `(state access string, symbol)` per transition.
    pub transitions: BTreeSet<(Vec<u32>, u32)>,
}

/// Structural change between two consecutively inferred machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsmDelta {
    /// States of the new machine (by access string).
    pub states: u32,
    /// Transitions of the new machine.
    pub transitions: u32,
    /// Access strings present now but not before.
    pub states_born: u32,
    /// Access strings present before but not now.
    pub states_died: u32,
    /// Transition identities present now but not before.
    pub transitions_born: u32,
    /// Transition identities present before but not now.
    pub transitions_died: u32,
}

/// Compares two signatures; `prev = None` means "first machine", which
/// reports every state and transition as born.
pub fn fsm_drift(prev: Option<&FsmSignature>, next: &FsmSignature) -> FsmDelta {
    let states = next.states.len() as u32;
    let transitions = next.transitions.len() as u32;
    match prev {
        None => FsmDelta {
            states,
            transitions,
            states_born: states,
            states_died: 0,
            transitions_born: transitions,
            transitions_died: 0,
        },
        Some(prev) => FsmDelta {
            states,
            transitions,
            states_born: next.states.difference(&prev.states).count() as u32,
            states_died: prev.states.difference(&next.states).count() as u32,
            transitions_born: next.transitions.difference(&prev.transitions).count() as u32,
            transitions_died: prev.transitions.difference(&next.transitions).count() as u32,
        },
    }
}

/// Keeps the previous machine's signature between batches and stamps
/// each new machine into an [`FsmDelta`].
#[derive(Debug, Default)]
pub struct FsmTracker {
    prev: Option<FsmSignature>,
}

impl FsmTracker {
    /// A tracker that has seen nothing.
    pub fn new() -> Self {
        FsmTracker::default()
    }

    /// Observes the next machine and returns the delta vs the previous
    /// one (everything-born semantics for the first).
    pub fn observe(&mut self, machine: &StateMachine) -> FsmDelta {
        let sig = machine.signature();
        let delta = fsm_drift(self.prev.as_ref(), &sig);
        self.prev = Some(sig);
        delta
    }
}

impl Persist for StateMachine {
    const KIND: Kind = Kind::FSM;

    fn encode(&self, w: &mut Writer) {
        w.usize(self.symbols.len());
        for s in &self.symbols {
            w.bytes(s.as_bytes());
        }
        w.u32(self.n_states);
        w.u64(self.flows);
        for &v in &self.visits {
            w.u64(v);
        }
        for &t in &self.terminations {
            w.u64(t);
        }
        w.usize(self.transitions.len());
        for t in &self.transitions {
            w.u32(t.from);
            w.u32(t.symbol);
            w.u32(t.to);
            w.u64(t.count);
        }
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let n_symbols = r.count(1)?;
        let mut symbols = Vec::with_capacity(n_symbols);
        for _ in 0..n_symbols {
            symbols.push(String::from_utf8(r.bytes()?.to_vec()).ok()?);
        }
        let n_states = r.u32()?;
        if n_states == 0 {
            return None;
        }
        let flows = r.u64()?;
        let mut visits = Vec::with_capacity(n_states as usize);
        for _ in 0..n_states {
            visits.push(r.u64()?);
        }
        let mut terminations = Vec::with_capacity(n_states as usize);
        for _ in 0..n_states {
            terminations.push(r.u64()?);
        }
        let n_transitions = r.count(20)?;
        let mut transitions: Vec<Transition> = Vec::with_capacity(n_transitions);
        for _ in 0..n_transitions {
            let t = Transition {
                from: r.u32()?,
                symbol: r.u32()?,
                to: r.u32()?,
                count: r.u64()?,
            };
            // Structural validation: ids in range, strict (from, symbol)
            // ordering (which also guarantees determinism).
            if t.from >= n_states || t.to >= n_states || t.symbol as usize >= symbols.len() {
                return None;
            }
            if let Some(prev) = transitions.last() {
                if (t.from, t.symbol) <= (prev.from, prev.symbol) {
                    return None;
                }
            }
            transitions.push(t);
        }
        // Counting invariant: visits = term + Σ outgoing edge counts.
        let mut outgoing = vec![0u64; n_states as usize];
        for t in &transitions {
            outgoing[t.from as usize] = outgoing[t.from as usize].checked_add(t.count)?;
        }
        for s in 0..n_states as usize {
            if visits[s] != terminations[s].checked_add(outgoing[s])? {
                return None;
            }
        }
        Some(StateMachine {
            symbols,
            n_states,
            transitions,
            visits,
            terminations,
            flows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{infer, FsmConfig};
    use store::artifacts::{decode_payload, encode_payload};

    fn machine_from(seqs: Vec<Vec<u32>>) -> StateMachine {
        let names = vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()];
        infer(&seqs, names, &FsmConfig::default())
    }

    fn machine(raw: &[&[u32]]) -> StateMachine {
        machine_from(raw.iter().map(|s| s.to_vec()).collect())
    }

    #[test]
    fn run_sequence_walks_and_stops() {
        let m = machine(&[&[1, 2, 3], &[1, 2, 3], &[1, 2, 3]]);
        let visited = m.run_sequence(&[1, 2, 3]);
        assert_eq!(visited[0], 0);
        assert_eq!(visited.len(), 4);
        // An undefined symbol stops the walk at the accepted prefix.
        let partial = m.run_sequence(&[1, 4, 3]);
        assert_eq!(partial.len(), 2);
    }

    #[test]
    fn access_strings_are_shortest_and_unique_roots() {
        let m = machine(&[&[1, 2], &[1, 3], &[4]]);
        let access = m.access_strings();
        assert_eq!(access[0], Vec::<u32>::new());
        assert_eq!(access.len(), m.n_states as usize);
        // Every access string actually reaches its state.
        for (state, a) in access.iter().enumerate() {
            let visited = m.run_sequence(a);
            assert_eq!(visited.last().copied(), Some(state as u32));
        }
    }

    #[test]
    fn drift_detects_birth_and_death() {
        // Enough flows that the 1->2 and 1->3 paths survive merging as
        // distinct structure instead of collapsing for lack of evidence.
        let a = machine_from(vec![vec![1, 2]; 20]);
        let b = machine_from(vec![vec![1, 3]; 20]);
        let mut tracker = FsmTracker::new();
        let first = tracker.observe(&a);
        assert_eq!(first.states_born, a.n_states);
        assert_eq!(first.transitions_born as usize, a.n_transitions());
        assert_eq!(first.states_died, 0);
        let second = tracker.observe(&b);
        assert!(second.states_born >= 1, "state via symbol 3 is new");
        assert!(second.states_died >= 1, "state via symbol 2 is gone");
        assert!(second.transitions_born >= 1);
        assert!(second.transitions_died >= 1);
    }

    #[test]
    fn identical_machines_do_not_drift() {
        let a = machine(&[&[1, 2, 3], &[1, 2], &[4]]);
        let mut tracker = FsmTracker::new();
        tracker.observe(&a);
        let delta = tracker.observe(&a);
        assert_eq!(delta.states_born, 0);
        assert_eq!(delta.states_died, 0);
        assert_eq!(delta.transitions_born, 0);
        assert_eq!(delta.transitions_died, 0);
        assert_eq!(delta.states, a.n_states);
    }

    #[test]
    fn persist_roundtrips_and_rejects_corruption() {
        let m = machine(&[&[1, 2, 3], &[1, 2], &[1, 4], &[2]]);
        let payload = encode_payload(&m);
        let back: StateMachine = decode_payload(&payload).expect("roundtrip");
        assert_eq!(back, m);

        // Every truncation is a miss, never a panic.
        for cut in 0..payload.len() {
            assert!(
                decode_payload::<StateMachine>(&payload[..cut]).is_none(),
                "truncation to {cut} must miss"
            );
        }
        // Trailing garbage is a miss.
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_payload::<StateMachine>(&long).is_none());
        // A corrupted transition count breaks the counting invariant.
        let mut bad = payload;
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(decode_payload::<StateMachine>(&bad).is_none());
    }

    #[test]
    fn emissions_list_outgoing_in_symbol_order() {
        let mut seqs = vec![vec![2u32, 1]; 20];
        seqs.extend(vec![vec![2, 3]; 10]);
        let m = machine_from(seqs);
        let at_root = m.emissions(0);
        assert_eq!(at_root.len(), 1);
        assert_eq!(at_root[0].0, 2);
        assert_eq!(at_root[0].2, 30);
        let next = m.step(0, 2).unwrap();
        let symbols: Vec<u32> = m.emissions(next).iter().map(|e| e.0).collect();
        assert!(symbols.windows(2).all(|w| w[0] < w[1]));
    }
}
