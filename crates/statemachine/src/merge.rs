//! Deterministic Alergia-style state merging on the PTA.
//!
//! The classic red-blue framework: red states form the consolidated
//! automaton, blue states are the fringe (children of red that are not
//! red). Each round takes the canonically first blue state and either
//! folds it into the first compatible red state or promotes it to red.
//! Compatibility is the Hoeffding frequency test over termination and
//! per-symbol emission frequencies, applied recursively along common
//! symbols.
//!
//! Determinism needs no seed: the PTA is order-invariant, red states
//! are scanned in promotion order, blue states in (red, symbol) order,
//! and transitions live in `BTreeMap`s — so the merged automaton is a
//! pure function of the multiset of input sequences and the
//! [`FsmConfig`] thresholds, reproducible bit for bit.

use std::collections::BTreeSet;

use crate::pta::Automaton;
use crate::FsmConfig;

/// Two observed frequencies are compatible when their difference is
/// within the Hoeffding bound for significance `alpha`:
/// `|f1/n1 - f2/n2| <= sqrt(ln(2/alpha)/2) * (1/sqrt(n1) + 1/sqrt(n2))`.
fn hoeffding_ok(f1: u64, n1: u64, f2: u64, n2: u64, alpha: f64) -> bool {
    if n1 == 0 || n2 == 0 {
        return true;
    }
    let gamma = (f1 as f64 / n1 as f64 - f2 as f64 / n2 as f64).abs();
    let bound =
        ((2.0 / alpha).ln() / 2.0).sqrt() * (1.0 / (n1 as f64).sqrt() + 1.0 / (n2 as f64).sqrt());
    gamma <= bound
}

/// Whether states `a` and `b` are Alergia-compatible: the frequency
/// test holds at the pair and recursively at every pair of children
/// reached by a common symbol. States with fewer than `min_evidence`
/// visits are compatible by default — too little data to reject.
/// Iterative with a visited set because the red side may contain
/// cycles after earlier merges.
fn compatible(auto: &Automaton, a: usize, b: usize, config: &FsmConfig) -> bool {
    let mut work = vec![(a, b)];
    let mut seen = BTreeSet::new();
    while let Some((a, b)) = work.pop() {
        if a == b || !seen.insert((a, b)) {
            continue;
        }
        let (na, nb) = (&auto.nodes[a], &auto.nodes[b]);
        if na.visits < config.min_evidence || nb.visits < config.min_evidence {
            continue;
        }
        if !hoeffding_ok(na.term, na.visits, nb.term, nb.visits, config.alpha) {
            return false;
        }
        let symbols: BTreeSet<u32> = na.trans.keys().chain(nb.trans.keys()).copied().collect();
        for s in symbols {
            let ea = na.trans.get(&s);
            let eb = nb.trans.get(&s);
            let fa = ea.map_or(0, |e| e.count);
            let fb = eb.map_or(0, |e| e.count);
            if !hoeffding_ok(fa, na.visits, fb, nb.visits, config.alpha) {
                return false;
            }
            if let (Some(ea), Some(eb)) = (ea, eb) {
                work.push((ea.child, eb.child));
            }
        }
    }
    true
}

/// Folds the blue subtree rooted at `source` into `target`, adding
/// visit, termination and edge counts. Iterative: the recursion is
/// driven by the source side, which is a tree, so the worklist is
/// finite even though the target side may have cycles.
fn fold(auto: &mut Automaton, target: usize, source: usize) {
    let mut work = vec![(target, source)];
    while let Some((target, source)) = work.pop() {
        if target == source {
            continue;
        }
        auto.nodes[source].alive = false;
        auto.nodes[target].visits += auto.nodes[source].visits;
        auto.nodes[target].term += auto.nodes[source].term;
        let kids: Vec<(u32, crate::pta::Edge)> = auto.nodes[source]
            .trans
            .iter()
            .map(|(s, e)| (*s, *e))
            .collect();
        for (s, edge) in kids {
            match auto.nodes[target].trans.get_mut(&s) {
                Some(existing) => {
                    existing.count += edge.count;
                    work.push((existing.child, edge.child));
                }
                None => {
                    auto.nodes[target].trans.insert(s, edge);
                }
            }
        }
    }
}

/// The canonically first blue state: scanning red states in promotion
/// order and their transitions in symbol order, the first child that is
/// not itself red. Returns `(parent, symbol, blue)` so the parent edge
/// can be redirected on a merge.
fn first_blue(auto: &Automaton, red: &[usize]) -> Option<(usize, u32, usize)> {
    let red_set: BTreeSet<usize> = red.iter().copied().collect();
    for &r in red {
        for (&s, edge) in &auto.nodes[r].trans {
            if !red_set.contains(&edge.child) {
                return Some((r, s, edge.child));
            }
        }
    }
    None
}

/// Runs red-blue Alergia merging in place. On return, the automaton
/// reachable from node 0 is the merged machine (dead nodes remain in
/// the arena but are unreachable).
pub(crate) fn merge(auto: &mut Automaton, config: &FsmConfig) {
    let mut red = vec![0usize];
    while let Some((parent, symbol, blue)) = first_blue(auto, &red) {
        match red
            .iter()
            .copied()
            .find(|&r| compatible(auto, r, blue, config))
        {
            Some(target) => {
                // Redirect the unique incoming edge of the blue subtree
                // root, then fold its counts into the target.
                auto.nodes[parent]
                    .trans
                    .get_mut(&symbol)
                    .expect("blue was found via this edge")
                    .child = target;
                fold(auto, target, blue);
            }
            None => red.push(blue),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pta::build_pta;

    fn reachable(auto: &Automaton) -> Vec<usize> {
        let mut seen = BTreeSet::new();
        let mut work = vec![0usize];
        while let Some(n) = work.pop() {
            if seen.insert(n) {
                work.extend(auto.nodes[n].trans.values().map(|e| e.child));
            }
        }
        seen.into_iter().collect()
    }

    #[test]
    fn identical_suffixes_merge_into_a_loop_or_shared_state() {
        // Many flows of the shape 1 (2)* 3: with enough evidence the
        // repeated 2-states are statistically identical and collapse.
        let mut flows = Vec::new();
        for reps in 0..4usize {
            for _ in 0..8 {
                let mut s = vec![1u32];
                s.extend(std::iter::repeat_n(2, reps));
                s.push(3);
                flows.push(s);
            }
        }
        let mut auto = build_pta(&flows);
        let before = reachable(&auto).len();
        merge(&mut auto, &FsmConfig::default());
        let after = reachable(&auto).len();
        assert!(
            after < before,
            "merging must shrink the PTA: {after} >= {before}"
        );
    }

    #[test]
    fn counting_invariant_survives_merging() {
        let mut flows = Vec::new();
        for i in 0..30u32 {
            flows.push(vec![1, 2, 1 + (i % 2), 3]);
        }
        let mut auto = build_pta(&flows);
        merge(&mut auto, &FsmConfig::default());
        for n in reachable(&auto) {
            let node = &auto.nodes[n];
            let outgoing: u64 = node.trans.values().map(|e| e.count).sum();
            assert_eq!(node.visits, node.term + outgoing, "node {n}");
        }
    }

    #[test]
    fn distinct_behaviours_stay_separate() {
        // Flows either terminate after 1 or always continue 1 -> 2;
        // with alpha tight these must not merge into one state.
        let mut flows = Vec::new();
        for _ in 0..20 {
            flows.push(vec![1u32]);
            flows.push(vec![2, 2, 2, 2]);
        }
        let mut auto = build_pta(&flows);
        merge(&mut auto, &FsmConfig::default());
        let root = &auto.nodes[0];
        assert!(
            root.trans.len() == 2,
            "both behaviours reachable from the root"
        );
    }

    #[test]
    fn hoeffding_bound_behaves() {
        // Identical frequencies always pass.
        assert!(hoeffding_ok(5, 10, 50, 100, 0.05));
        // Wildly different frequencies with strong evidence fail.
        assert!(!hoeffding_ok(0, 1000, 1000, 1000, 0.05));
        // No evidence: cannot reject.
        assert!(hoeffding_ok(0, 0, 1000, 1000, 0.05));
    }
}
