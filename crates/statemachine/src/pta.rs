//! The mutable automaton the inference pipeline works on: a prefix
//! tree acceptor (PTA) built from symbol sequences, later destructively
//! merged by [`crate::merge`].
//!
//! Everything here is deliberately order-invariant: the PTA is defined
//! by prefix counts alone, so any permutation of the input sequences
//! builds the identical structure, and transitions live in `BTreeMap`s
//! so every iteration over them is in symbol order.

use std::collections::BTreeMap;

/// One outgoing edge: the child node plus how many sequences traversed
/// the edge. Edge counts are kept separately from child visit counts
/// because a merged child aggregates several incoming edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Edge {
    pub child: usize,
    pub count: u64,
}

/// One automaton node. The counting invariant
/// `visits == term + Σ outgoing edge counts` holds in the fresh PTA and
/// is preserved by merging (both sides of every fold add).
#[derive(Debug, Clone, Default)]
pub(crate) struct Node {
    /// Outgoing edges in symbol order.
    pub trans: BTreeMap<u32, Edge>,
    /// Sequences that visited this node.
    pub visits: u64,
    /// Sequences that ended at this node.
    pub term: u64,
    /// False once the node was folded into another.
    pub alive: bool,
}

/// A mutable automaton; node 0 is the root/initial state.
#[derive(Debug, Clone)]
pub(crate) struct Automaton {
    pub nodes: Vec<Node>,
}

impl Automaton {
    fn fresh_node(&mut self) -> usize {
        self.nodes.push(Node {
            alive: true,
            ..Node::default()
        });
        self.nodes.len() - 1
    }
}

/// Builds the prefix tree acceptor of `sequences`: one node per
/// distinct prefix, with visit, termination and edge counts.
pub(crate) fn build_pta(sequences: &[Vec<u32>]) -> Automaton {
    let mut auto = Automaton { nodes: Vec::new() };
    let root = auto.fresh_node();
    debug_assert_eq!(root, 0);
    for seq in sequences {
        let mut at = root;
        auto.nodes[at].visits += 1;
        for &symbol in seq {
            let next = match auto.nodes[at].trans.get_mut(&symbol) {
                Some(edge) => {
                    edge.count += 1;
                    edge.child
                }
                None => {
                    let child = auto.fresh_node();
                    auto.nodes[at]
                        .trans
                        .insert(symbol, Edge { child, count: 1 });
                    child
                }
            };
            auto.nodes[next].visits += 1;
            at = next;
        }
        auto.nodes[at].term += 1;
    }
    auto
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(raw: &[&[u32]]) -> Vec<Vec<u32>> {
        raw.iter().map(|s| s.to_vec()).collect()
    }

    #[test]
    fn pta_counts_prefixes() {
        let auto = build_pta(&seqs(&[&[1, 2], &[1, 3], &[1, 2]]));
        let root = &auto.nodes[0];
        assert_eq!(root.visits, 3);
        assert_eq!(root.term, 0);
        let e1 = root.trans.get(&1).unwrap();
        assert_eq!(e1.count, 3);
        let after1 = &auto.nodes[e1.child];
        assert_eq!(after1.visits, 3);
        assert_eq!(after1.trans.get(&2).unwrap().count, 2);
        assert_eq!(after1.trans.get(&3).unwrap().count, 1);
    }

    #[test]
    fn pta_is_order_invariant() {
        let a = build_pta(&seqs(&[&[1, 2], &[1, 3], &[2]]));
        let b = build_pta(&seqs(&[&[2], &[1, 3], &[1, 2]]));
        // Node identity may differ, but the counting structure at the
        // root (and recursively, by construction) cannot.
        assert_eq!(a.nodes.len(), b.nodes.len());
        assert_eq!(a.nodes[0].visits, b.nodes[0].visits);
        let counts = |auto: &Automaton| -> Vec<(u32, u64)> {
            auto.nodes[0]
                .trans
                .iter()
                .map(|(s, e)| (*s, e.count))
                .collect()
        };
        assert_eq!(counts(&a), counts(&b));
    }

    #[test]
    fn counting_invariant_holds() {
        let auto = build_pta(&seqs(&[&[1, 2, 3], &[1, 2], &[], &[4]]));
        for node in &auto.nodes {
            let outgoing: u64 = node.trans.values().map(|e| e.count).sum();
            assert_eq!(node.visits, node.term + outgoing);
        }
    }
}
