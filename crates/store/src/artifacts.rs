//! The [`Persist`] trait and codecs for the pipeline's core artifacts.
//!
//! Each artifact kind owns a one-byte tag (part of the file frame and of
//! every cache key) and a short file-name prefix. Decoders are strictly
//! validating: they re-check every structural invariant the in-memory
//! type relies on (cut ordering, condensed length, neighbor-list shape)
//! through the checked constructors, because a file that passes the
//! frame checksum can still have been written by a buggy or future
//! encoder. Any violation is `None` — a cache miss, never a panic.

use crate::codec::{Reader, Writer};
use cluster::{Clustering, Label, SelectedParams};
use dissim::strata::DEFAULT_PIVOTS;
use dissim::vptree::VpNode;
use dissim::{
    CondensedMatrix, DissimArtifact, MatrixTile, NeighborIndex, StrataIndex, Stratum, VpForest,
    VpTree,
};
use segment::{MessageSegments, TraceSegmentation};

/// An artifact kind: a stable one-byte tag plus a file-name prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Kind {
    tag: u8,
    name: &'static str,
}

impl Kind {
    /// A [`TraceSegmentation`] (per-message cut offsets).
    pub const SEGMENTATION: Kind = Kind {
        tag: 1,
        name: "seg",
    };
    /// A deduplicated segment store (unique values + instances).
    pub const SEGMENT_STORE: Kind = Kind {
        tag: 2,
        name: "segstore",
    };
    /// A [`DissimArtifact`]: condensed matrix + optional neighbor index.
    pub const DISSIM: Kind = Kind {
        tag: 3,
        name: "dissim",
    };
    /// Auto-configured DBSCAN parameters ([`SelectedParams`]).
    pub const SELECTION: Kind = Kind {
        tag: 4,
        name: "select",
    };
    /// A bare [`Clustering`] (label per item).
    pub const CLUSTERING: Kind = Kind {
        tag: 5,
        name: "cluster",
    };
    /// The full clustering stage (selection + ε source + labels).
    pub const CLUSTER_STAGE: Kind = Kind {
        tag: 6,
        name: "stage",
    };
    /// The refined clustering (post merge/split).
    pub const REFINED: Kind = Kind {
        tag: 7,
        name: "refined",
    };
    /// A prefix manifest: `(item count, artifact key)` entries for one
    /// `(kind, parameters)` family, enabling incremental extension.
    pub const MANIFEST: Kind = Kind {
        tag: 8,
        name: "manifest",
    };
    /// One row-block tile of a tiled dissimilarity matrix
    /// ([`MatrixTile`]).
    pub const TILE: Kind = Kind {
        tag: 9,
        name: "tile",
    };
    /// One chunk tree of a vantage-point forest ([`VpTree`]).
    pub const VPTREE: Kind = Kind {
        tag: 10,
        name: "vptree",
    };
    /// A length-stratified neighbor index ([`StrataIndex`]): per-length
    /// strata with local vantage-point forests and LAESA pivot rows.
    pub const STRATA: Kind = Kind {
        tag: 11,
        name: "strata",
    };
    /// An inferred protocol state machine (`statemachine::StateMachine`),
    /// keyed on the message-type clustering inputs so trace growth
    /// invalidates correctly.
    pub const FSM: Kind = Kind {
        tag: 12,
        name: "fsm",
    };

    /// The one-byte tag written into file frames and fed into keys.
    pub fn tag(self) -> u8 {
        self.tag
    }

    /// The file-name prefix (`<name>-<key hex>.bin`).
    pub fn name(self) -> &'static str {
        self.name
    }
}

/// A type that can be stored in and recovered from the artifact store.
///
/// `decode` must be total over arbitrary byte payloads: it returns
/// `None` for anything it did not write itself. It need not consume the
/// whole reader — the store checks [`Reader::is_at_end`] afterwards, so
/// trailing bytes also read as a miss.
pub trait Persist: Sized {
    /// The artifact kind this type serializes as.
    const KIND: Kind;

    /// Appends the encoded payload.
    fn encode(&self, w: &mut Writer);

    /// Decodes a payload previously produced by [`encode`](Self::encode).
    fn decode(r: &mut Reader) -> Option<Self>;
}

/// Encodes `value` as a bare payload (no file frame).
pub fn encode_payload<T: Persist>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_inner()
}

/// Decodes a bare payload, requiring full consumption.
pub fn decode_payload<T: Persist>(payload: &[u8]) -> Option<T> {
    let mut r = Reader::new(payload);
    let value = T::decode(&mut r)?;
    if !r.is_at_end() {
        return None;
    }
    Some(value)
}

impl Persist for TraceSegmentation {
    const KIND: Kind = Kind::SEGMENTATION;

    fn encode(&self, w: &mut Writer) {
        w.usize(self.messages.len());
        for msg in &self.messages {
            // A message is reproduced from its payload length plus its
            // interior cut offsets; an empty message has length 0.
            let len = msg.ranges().last().map_or(0, |r| r.end);
            w.usize(len);
            let cuts = msg.cuts();
            w.usize(cuts.len());
            for c in cuts {
                w.usize(c);
            }
        }
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let n = r.count(16)?;
        let mut messages = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.usize()?;
            let n_cuts = r.count(8)?;
            let mut cuts = Vec::with_capacity(n_cuts);
            let mut prev = 0usize;
            for _ in 0..n_cuts {
                let c = r.usize()?;
                // `MessageSegments::from_cuts` panics on bad cuts; the
                // decoder must pre-validate so corruption stays a miss.
                if c <= prev || c >= len {
                    return None;
                }
                cuts.push(c);
                prev = c;
            }
            messages.push(MessageSegments::from_cuts(len, &cuts));
        }
        Some(TraceSegmentation { messages })
    }
}

impl Persist for CondensedMatrix {
    const KIND: Kind = Kind::DISSIM;

    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for &v in self.values() {
            w.f64(v);
        }
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let n = r.usize()?;
        let m = n.checked_mul(n.saturating_sub(1))? / 2;
        if m.checked_mul(8)? > r.remaining() {
            return None;
        }
        let mut data = Vec::with_capacity(m);
        for _ in 0..m {
            data.push(r.f64()?);
        }
        CondensedMatrix::from_condensed(n, data)
    }
}

impl Persist for NeighborIndex {
    const KIND: Kind = Kind::DISSIM;

    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for &(d, j) in self.flat_lists() {
            w.f64(d);
            w.u32(j);
        }
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let n = r.usize()?;
        let m = n.checked_mul(n.saturating_sub(1))?;
        if m.checked_mul(12)? > r.remaining() {
            return None;
        }
        let mut lists = Vec::with_capacity(m);
        for _ in 0..m {
            let d = r.f64()?;
            let j = r.u32()?;
            lists.push((d, j));
        }
        NeighborIndex::from_flat_lists(n, lists)
    }
}

impl Persist for DissimArtifact {
    const KIND: Kind = Kind::DISSIM;

    fn encode(&self, w: &mut Writer) {
        self.matrix().encode(w);
        match self.neighbors_built() {
            None => w.u8(0),
            Some(ix) => {
                w.u8(1);
                ix.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let matrix = CondensedMatrix::decode(r)?;
        let neighbors = match r.u8()? {
            0 => None,
            1 => Some(NeighborIndex::decode(r)?),
            _ => return None,
        };
        // Deserialized artifacts start single-threaded; the session
        // restores its configured thread count via `set_threads`.
        DissimArtifact::from_parts(matrix, neighbors, 1)
    }
}

impl Persist for MatrixTile {
    const KIND: Kind = Kind::TILE;

    fn encode(&self, w: &mut Writer) {
        let rows = self.rows();
        w.usize(rows.start);
        w.usize(rows.end);
        w.u64(self.checksum());
        // The entry count is implied by the row span.
        for &v in self.data() {
            w.f64(v);
        }
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let start = r.usize()?;
        let end = r.usize()?;
        if start > end {
            return None;
        }
        let checksum = r.u64()?;
        // Entry count for rows [start, end): (end(end−1) − start(start−1))/2,
        // with overflow from hostile spans read as a miss.
        let m = end
            .checked_mul(end.saturating_sub(1))?
            .checked_sub(start.wrapping_mul(start.saturating_sub(1)))?
            / 2;
        if m.checked_mul(8)? > r.remaining() {
            return None;
        }
        let mut data = Vec::with_capacity(m);
        for _ in 0..m {
            data.push(r.f64()?);
        }
        // `from_parts` re-verifies the length and the tile checksum, so
        // an entry-level bit flip that slipped past the file frame still
        // decodes as a miss.
        MatrixTile::from_parts(start..end, data, checksum)
    }
}

impl Persist for VpTree {
    const KIND: Kind = Kind::VPTREE;

    fn encode(&self, w: &mut Writer) {
        let span = self.span();
        w.usize(span.start);
        w.usize(span.end);
        w.u32(self.root());
        w.u64(self.checksum());
        // The node count is implied by the span.
        for node in self.nodes() {
            w.u32(node.item);
            w.f64(node.threshold);
            w.u32(node.inside);
            w.u32(node.outside);
        }
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let start = r.usize()?;
        let end = r.usize()?;
        if start > end {
            return None;
        }
        let root = r.u32()?;
        let checksum = r.u64()?;
        let m = end.checked_sub(start)?;
        if m.checked_mul(20)? > r.remaining() {
            return None;
        }
        let mut nodes = Vec::with_capacity(m);
        for _ in 0..m {
            let item = r.u32()?;
            let threshold = r.f64()?;
            let inside = r.u32()?;
            let outside = r.u32()?;
            nodes.push(VpNode {
                item,
                threshold,
                inside,
                outside,
            });
        }
        // `from_parts` re-validates the whole structure (node count,
        // single-visit reachability, in-span items, NaN-free thresholds)
        // and the checksum, so hostile or bit-flipped payloads decode as
        // a miss.
        VpTree::from_parts(start..end, root, nodes, checksum)
    }
}

impl Persist for StrataIndex {
    const KIND: Kind = Kind::STRATA;

    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        w.usize(self.chunk());
        w.u64(self.checksum());
        w.usize(self.strata().len());
        for s in self.strata() {
            w.usize(s.value_len());
            w.usize(s.items().len());
            for &g in s.items() {
                w.u32(g);
            }
            // The tree count is implied by the member count and chunk.
            for tree in s.forest().trees() {
                tree.encode(w);
            }
            // The pivot-row count is implied by the member count.
            for &d in s.pivot_rows() {
                w.f64(d);
            }
        }
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let n = r.usize()?;
        let chunk = r.usize()?;
        if chunk == 0 {
            return None;
        }
        let checksum = r.u64()?;
        let n_strata = r.count(16)?;
        let mut strata = Vec::with_capacity(n_strata);
        for _ in 0..n_strata {
            let len = r.usize()?;
            let size = r.count(4)?;
            let mut items = Vec::with_capacity(size);
            for _ in 0..size {
                items.push(r.u32()?);
            }
            let n_trees = VpForest::chunk_count(size, chunk);
            let mut trees = Vec::with_capacity(n_trees);
            for _ in 0..n_trees {
                trees.push(VpTree::decode(r)?);
            }
            let forest = VpForest::from_trees(size, chunk, trees)?;
            let m = DEFAULT_PIVOTS.min(size);
            let n_rows = m.checked_mul(size)?;
            if n_rows.checked_mul(8)? > r.remaining() {
                return None;
            }
            let mut pivot_rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                pivot_rows.push(r.f64()?);
            }
            // `from_parts` re-validates the stratum shape (forest item
            // count, ascending members, pivot-row shape, NaN-freedom).
            strata.push(Stratum::from_parts(len, items, forest, pivot_rows)?);
        }
        // The index-level `from_parts` re-validates the partition of
        // `0..n` and the whole-index checksum, so hostile or bit-flipped
        // payloads decode as a miss.
        StrataIndex::from_parts(n, chunk, strata, checksum)
    }
}

impl Persist for SelectedParams {
    const KIND: Kind = Kind::SELECTION;

    fn encode(&self, w: &mut Writer) {
        w.f64(self.epsilon);
        w.usize(self.min_samples);
        w.usize(self.k);
        w.usize(self.ecdf_values.len());
        for &v in &self.ecdf_values {
            w.f64(v);
        }
        w.usize(self.smoothed_curve.len());
        for &(x, y) in &self.smoothed_curve {
            w.f64(x);
            w.f64(y);
        }
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let epsilon = r.f64()?;
        let min_samples = r.usize()?;
        let k = r.usize()?;
        let n_ecdf = r.count(8)?;
        let mut ecdf_values = Vec::with_capacity(n_ecdf);
        for _ in 0..n_ecdf {
            ecdf_values.push(r.f64()?);
        }
        let n_curve = r.count(16)?;
        let mut smoothed_curve = Vec::with_capacity(n_curve);
        for _ in 0..n_curve {
            let x = r.f64()?;
            let y = r.f64()?;
            smoothed_curve.push((x, y));
        }
        Some(SelectedParams {
            epsilon,
            min_samples,
            k,
            ecdf_values,
            smoothed_curve,
        })
    }
}

impl Persist for Clustering {
    const KIND: Kind = Kind::CLUSTERING;

    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        // Noise is 0, cluster `c` is `c + 1` — one u64 per item.
        for label in self.labels() {
            match label {
                Label::Noise => w.u64(0),
                Label::Cluster(c) => w.u64(u64::from(*c) + 1),
            }
        }
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let n = r.count(8)?;
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let v = r.u64()?;
            labels.push(match v {
                0 => Label::Noise,
                c => Label::Cluster(u32::try_from(c - 1).ok()?),
            });
        }
        // `from_labels` renumbers by first appearance; stored
        // clusterings are already in that compact form, so this is a
        // bit-exact round-trip (pinned by the store tests).
        Some(Clustering::from_labels(labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(value: &T) -> T {
        let payload = encode_payload(value);
        decode_payload::<T>(&payload).expect("roundtrip decode")
    }

    #[test]
    fn segmentation_roundtrip() {
        let seg = TraceSegmentation {
            messages: vec![
                MessageSegments::from_cuts(10, &[2, 5, 9]),
                MessageSegments::from_cuts(4, &[]),
                MessageSegments::from_cuts(0, &[]),
            ],
        };
        assert_eq!(roundtrip(&seg), seg);
    }

    #[test]
    fn segmentation_bad_cuts_is_a_miss_not_a_panic() {
        // len=4 with a cut at 9: structurally invalid, would panic in
        // `from_cuts` if the decoder did not pre-validate.
        let mut w = Writer::new();
        w.usize(1);
        w.usize(4);
        w.usize(1);
        w.usize(9);
        assert!(decode_payload::<TraceSegmentation>(&w.into_inner()).is_none());
    }

    #[test]
    fn matrix_roundtrip_is_bitwise() {
        let m = CondensedMatrix::build(5, |i, j| (i * 7 + j) as f64 / 3.0);
        let back = roundtrip(&m);
        assert_eq!(back.len(), m.len());
        let bits = |m: &CondensedMatrix| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&m));
    }

    #[test]
    fn matrix_length_mismatch_is_a_miss() {
        let mut w = Writer::new();
        w.usize(5); // claims 10 entries
        for i in 0..9 {
            w.f64(i as f64);
        }
        assert!(decode_payload::<CondensedMatrix>(&w.into_inner()).is_none());
    }

    #[test]
    fn neighbor_index_roundtrip() {
        let pts = [0.0f64, 0.4, 1.0, 5.0, 2.5];
        let m = CondensedMatrix::build(pts.len(), |i, j| (pts[i] - pts[j]).abs());
        let ix = NeighborIndex::build(&m);
        assert_eq!(roundtrip(&ix), ix);
    }

    #[test]
    fn dissim_artifact_roundtrip_with_and_without_neighbors() {
        let pts = [3.0f64, 1.0, 4.0, 1.5];
        let mut a = DissimArtifact::compute(pts.len(), 1, |i, j| (pts[i] - pts[j]).abs());
        let cold = roundtrip_artifact(&a);
        assert!(cold.neighbors_built().is_none());
        assert_eq!(cold.matrix(), a.matrix());
        a.neighbors();
        let warm = roundtrip_artifact(&a);
        assert_eq!(warm.neighbors_built(), a.neighbors_built());
    }

    fn roundtrip_artifact(a: &DissimArtifact) -> DissimArtifact {
        decode_payload::<DissimArtifact>(&encode_payload(a)).expect("artifact roundtrip")
    }

    #[test]
    fn matrix_tile_roundtrip_is_bitwise() {
        let params = dissim::DissimParams::default();
        let segs: Vec<Vec<u8>> = (0..17u8)
            .map(|i| vec![i, i ^ 3, i.wrapping_mul(7)])
            .collect();
        let vals: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let tiled = dissim::TiledMatrix::build_segments(&vals, &params, 5, 1);
        for tile in tiled.tiles() {
            let back = roundtrip(tile);
            assert_eq!(back.rows(), tile.rows());
            assert_eq!(back.checksum(), tile.checksum());
            let bits = |t: &MatrixTile| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&back), bits(tile));
        }
    }

    #[test]
    fn matrix_tile_corruption_is_a_miss() {
        let params = dissim::DissimParams::default();
        let segs: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i, i + 1]).collect();
        let vals: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let tiled = dissim::TiledMatrix::build_segments(&vals, &params, 4, 1);
        let tile = &tiled.tiles()[1];
        let good = encode_payload(tile);
        assert!(decode_payload::<MatrixTile>(&good).is_some());
        // Flip one bit in an entry: the per-tile checksum catches it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        assert!(decode_payload::<MatrixTile>(&bad).is_none());
        // Truncation.
        assert!(decode_payload::<MatrixTile>(&good[..good.len() - 8]).is_none());
        // Hostile row span claiming more data than present.
        let mut w = Writer::new();
        w.usize(0);
        w.usize(usize::MAX / 2);
        w.u64(0);
        assert!(decode_payload::<MatrixTile>(&w.into_inner()).is_none());
    }

    #[test]
    fn vptree_roundtrip_is_exact() {
        let params = dissim::DissimParams::default();
        let segs: Vec<Vec<u8>> = (0..13u8)
            .map(|i| vec![i.wrapping_mul(11), i ^ 5, i])
            .collect();
        let vals: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let forest = dissim::VpForest::build(&vals, &params, 5);
        assert!(forest.trees().len() > 1, "want multiple chunk trees");
        for tree in forest.trees() {
            assert_eq!(&roundtrip(tree), tree);
        }
    }

    #[test]
    fn vptree_corruption_is_a_miss() {
        let params = dissim::DissimParams::default();
        let segs: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i, i.wrapping_mul(3)]).collect();
        let vals: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let forest = dissim::VpForest::build(&vals, &params, 9);
        let tree = &forest.trees()[0];
        let good = encode_payload(tree);
        assert!(decode_payload::<VpTree>(&good).is_some());
        // Flip one bit in the last node's child index: the checksum
        // catches it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x04;
        assert!(decode_payload::<VpTree>(&bad).is_none());
        // Truncation.
        assert!(decode_payload::<VpTree>(&good[..good.len() - 4]).is_none());
        // Hostile span claiming more nodes than present.
        let mut w = Writer::new();
        w.usize(0);
        w.usize(usize::MAX / 32);
        w.u32(0);
        w.u64(0);
        assert!(decode_payload::<VpTree>(&w.into_inner()).is_none());
    }

    fn mixed_values() -> Vec<Vec<u8>> {
        (0..40usize)
            .map(|i| {
                let len = [1usize, 2, 3, 4, 4, 7, 8, 12][i % 8];
                (0..len)
                    .map(|k| ((i * 31 + k * 17 + i * k) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn strata_index_roundtrip_is_exact() {
        let params = dissim::DissimParams::default();
        let segs = mixed_values();
        let vals: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let index = StrataIndex::build(&vals, &params, 4);
        assert!(index.strata().len() > 1, "want multiple strata");
        let back = roundtrip(&index);
        assert_eq!(back.checksum(), index.checksum());
        assert!(back.matches(&vals));
    }

    #[test]
    fn strata_index_corruption_is_a_miss() {
        let params = dissim::DissimParams::default();
        let segs = mixed_values();
        let vals: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let index = StrataIndex::build(&vals, &params, 4);
        let good = encode_payload(&index);
        assert!(decode_payload::<StrataIndex>(&good).is_some());
        // Flip one bit in a pivot-row entry: the index checksum
        // catches it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x20;
        assert!(decode_payload::<StrataIndex>(&bad).is_none());
        // Truncation.
        assert!(decode_payload::<StrataIndex>(&good[..good.len() - 8]).is_none());
        // Hostile stratum count claiming more data than present.
        let mut w = Writer::new();
        w.usize(4);
        w.usize(4);
        w.u64(0);
        w.usize(usize::MAX / 64);
        assert!(decode_payload::<StrataIndex>(&w.into_inner()).is_none());
    }

    #[test]
    fn selected_params_roundtrip() {
        let p = SelectedParams {
            epsilon: 0.1875,
            min_samples: 4,
            k: 2,
            ecdf_values: vec![0.0, 0.1, 0.5, -0.0],
            smoothed_curve: vec![(0.0, 0.0), (0.5, 0.75)],
        };
        let back = roundtrip(&p);
        assert_eq!(back.epsilon.to_bits(), p.epsilon.to_bits());
        assert_eq!(back.min_samples, p.min_samples);
        assert_eq!(back.k, p.k);
        assert_eq!(back.ecdf_values, p.ecdf_values);
        assert_eq!(back.smoothed_curve, p.smoothed_curve);
    }

    #[test]
    fn clustering_roundtrip_preserves_labels_exactly() {
        let c = Clustering::from_labels(vec![
            Label::Noise,
            Label::Cluster(7),
            Label::Cluster(7),
            Label::Cluster(2),
            Label::Noise,
            Label::Cluster(2),
        ]);
        let back = roundtrip(&c);
        assert_eq!(back.labels(), c.labels());
        assert_eq!(back.n_clusters(), c.n_clusters());
    }
}
