//! Minimal little-endian binary codec for artifact payloads.
//!
//! The workspace deliberately avoids external serialization crates; the
//! artifact formats are hand-rolled over this pair of cursor types.
//! Every [`Reader`] method returns `Option` and degrades truncated or
//! malformed input to `None` — the store turns any `None` into a cache
//! miss, so a damaged file can never panic or surface an error to the
//! pipeline.

/// Append-only little-endian writer over a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by its IEEE-754 bit pattern — round-trips every
    /// value (including signed zeros and NaN payloads) bit-for-bit.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes without a length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` length prefix followed by the bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.raw(bytes);
    }

    /// The encoded buffer.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far (checksum input).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Checked little-endian cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Takes the next `n` bytes, or `None` past the end.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Some(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> Option<usize> {
        self.u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads a `u64`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.usize()?;
        self.take(n)
    }

    /// A claimed element count, rejected up front when even zero-sized
    /// headers for that many elements could not fit in the remaining
    /// input (`min_element_bytes` is the smallest encoding of one
    /// element). Guards `Vec::with_capacity` against corrupt lengths.
    pub fn count(&mut self, min_element_bytes: usize) -> Option<usize> {
        let n = self.usize()?;
        let need = n.checked_mul(min_element_bytes.max(1))?;
        if need > self.data.len() - self.pos {
            return None;
        }
        Some(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the whole input has been consumed — artifact decoders
    /// require this, so trailing garbage reads as a miss.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_bytes() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bytes(b"hello");
        let buf = w.into_inner();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.bytes(), Some(&b"hello"[..]));
        assert!(r.is_at_end());
    }

    #[test]
    fn truncated_reads_are_none() {
        let mut w = Writer::new();
        w.u64(42);
        let buf = w.into_inner();
        let mut r = Reader::new(&buf[..5]);
        assert_eq!(r.u64(), None);
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes(), None, "length 42 with no payload");
    }

    #[test]
    fn count_rejects_absurd_lengths() {
        let mut w = Writer::new();
        w.u64(u64::MAX / 2);
        let buf = w.into_inner();
        let mut r = Reader::new(&buf);
        assert_eq!(r.count(8), None);
    }
}
