//! Content-addressed cache keys: a 128-bit FNV-1a digest.
//!
//! The store is keyed by digests over artifact *inputs* — payload
//! bytes, dissimilarity parameters, segmenter configuration, and the
//! format version — so a parameter change invalidates exactly the
//! artifacts it affects, and nothing else. The digest is two
//! independently-seeded FNV-1a 64 lanes run over the same byte stream;
//! 128 bits make accidental collisions negligible for a cache (this is
//! an integrity aid, not a cryptographic boundary — the cache directory
//! is trusted local state).
//!
//! [`KeyDigest::finish`] is non-consuming, so a caller feeding a
//! sequence (say, segment values) can snapshot the key after every
//! prefix — that is what makes *prefix* lookup for incremental matrix
//! extension a single pass.

use crate::format::FORMAT_VERSION;
use crate::Kind;

const FNV_PRIME: u64 = 0x100_0000_01b3;
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// Second lane: the FNV offset basis perturbed by the golden-ratio
/// constant, so the lanes decorrelate from the first byte on.
const FNV_OFFSET_B: u64 = FNV_OFFSET_A ^ 0x9e37_79b9_7f4a_7c15;

/// A 128-bit content key. Renders as 32 lowercase hex characters (the
/// on-disk file name stem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key(pub [u8; 16]);

impl Key {
    /// The key as lowercase hex.
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses 32 lowercase/uppercase hex characters; `None` otherwise.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Key(out))
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Incremental 128-bit FNV-1a digest for composing cache keys.
///
/// Seeding with a [`Kind`] and the [`FORMAT_VERSION`] is built into the
/// constructor, so bumping the format version invalidates every key at
/// once and two artifact kinds can never collide on a file name.
#[derive(Debug, Clone)]
pub struct KeyDigest {
    a: u64,
    b: u64,
}

impl KeyDigest {
    /// Starts a digest for one artifact kind (format version baked in).
    pub fn new(kind: Kind) -> Self {
        let mut d = Self {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        };
        d.u64(u64::from(FORMAT_VERSION));
        d.u64(u64::from(kind.tag()));
        d
    }

    /// Feeds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a length-framed byte string (framing keeps `["ab","c"]`
    /// distinct from `["a","bc"]`).
    pub fn frame(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.bytes(bytes);
    }

    /// Feeds a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Feeds an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Feeds an optional `f64` (presence tagged, so `None` and
    /// `Some(0.0)` differ).
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u64(0),
            Some(x) => {
                self.u64(1);
                self.f64(x);
            }
        }
    }

    /// Feeds a UTF-8 string, length-framed.
    pub fn str(&mut self, s: &str) {
        self.frame(s.as_bytes());
    }

    /// Feeds another key (key composition).
    pub fn key(&mut self, k: &Key) {
        self.bytes(&k.0);
    }

    /// The key for everything fed so far. Non-consuming: callers may
    /// keep feeding and snapshot again (prefix keys).
    pub fn finish(&self) -> Key {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.a.to_le_bytes());
        out[8..].copy_from_slice(&self.b.to_le_bytes());
        Key(out)
    }
}

/// Plain FNV-1a 64 over a byte slice — the whole-file checksum of the
/// artifact format.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET_A;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let mut d = KeyDigest::new(Kind::DISSIM);
        d.bytes(b"hello");
        let k = d.finish();
        assert_eq!(k.hex().len(), 32);
        assert_eq!(Key::from_hex(&k.hex()), Some(k));
        assert_eq!(Key::from_hex("xyz"), None);
        assert_eq!(Key::from_hex(&"g".repeat(32)), None);
    }

    #[test]
    fn kinds_and_content_separate_keys() {
        let mut a = KeyDigest::new(Kind::DISSIM);
        let mut b = KeyDigest::new(Kind::SEGMENT_STORE);
        a.bytes(b"x");
        b.bytes(b"x");
        assert_ne!(a.finish(), b.finish(), "kind must separate keys");
        let mut c = KeyDigest::new(Kind::DISSIM);
        c.bytes(b"y");
        assert_ne!(a.finish(), c.finish(), "content must separate keys");
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let mut a = KeyDigest::new(Kind::DISSIM);
        a.frame(b"ab");
        a.frame(b"c");
        let mut b = KeyDigest::new(Kind::DISSIM);
        b.frame(b"a");
        b.frame(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn finish_is_a_snapshot() {
        let mut d = KeyDigest::new(Kind::DISSIM);
        d.frame(b"one");
        let at_one = d.finish();
        d.frame(b"two");
        let at_two = d.finish();
        assert_ne!(at_one, at_two);
        // Re-deriving the prefix digest gives the same snapshot.
        let mut again = KeyDigest::new(Kind::DISSIM);
        again.frame(b"one");
        assert_eq!(again.finish(), at_one);
    }
}
