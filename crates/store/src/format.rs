//! The on-disk artifact file framing.
//!
//! Every cache file is
//!
//! ```text
//! magic "FTCA" | version u32 | kind u8 | payload_len u64 | payload | fnv64 checksum
//! ```
//!
//! with the checksum computed over everything before it. [`decode_file`]
//! verifies all five framing fields and returns `None` on any mismatch —
//! truncation, a flipped bit anywhere (header or body), a version bump,
//! or a file of the wrong kind all degrade to a clean cache miss. The
//! store never trusts a cache file further than this frame plus the
//! per-artifact structural checks in the decoders.

use crate::codec::{Reader, Writer};
use crate::digest::fnv64;
use crate::Kind;

/// File magic: "field type clustering artifact".
pub const MAGIC: [u8; 4] = *b"FTCA";

/// Format version. Bumping it invalidates every existing cache file
/// (and, via [`crate::KeyDigest::new`], every existing cache key).
pub const FORMAT_VERSION: u32 = 1;

/// Frames an encoded payload as a complete artifact file.
pub fn encode_file(kind: Kind, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u8(kind.tag());
    w.usize(payload.len());
    w.raw(payload);
    let checksum = fnv64(w.as_slice());
    w.u64(checksum);
    w.into_inner()
}

/// Unframes an artifact file, returning the payload slice. `None` on
/// any framing violation: bad magic, other version, other kind, length
/// mismatch, trailing bytes, or checksum failure.
pub fn decode_file(kind: Kind, bytes: &[u8]) -> Option<&[u8]> {
    // Checksum first: it covers the header too, so every later check
    // runs on bytes already known to be intact.
    if bytes.len() < 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv64(body) != stored {
        return None;
    }
    let mut r = Reader::new(body);
    if r.take(4)? != MAGIC {
        return None;
    }
    if r.u32()? != FORMAT_VERSION {
        return None;
    }
    if r.u8()? != kind.tag() {
        return None;
    }
    let len = r.usize()?;
    let payload = r.take(len)?;
    if !r.is_at_end() {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let file = encode_file(Kind::DISSIM, b"payload");
        assert_eq!(decode_file(Kind::DISSIM, &file), Some(&b"payload"[..]));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let file = encode_file(Kind::CLUSTERING, b"");
        assert_eq!(decode_file(Kind::CLUSTERING, &file), Some(&b""[..]));
    }

    #[test]
    fn wrong_kind_is_a_miss() {
        let file = encode_file(Kind::DISSIM, b"payload");
        assert_eq!(decode_file(Kind::CLUSTERING, &file), None);
    }

    #[test]
    fn every_single_bit_flip_is_a_miss() {
        let file = encode_file(Kind::DISSIM, b"some payload bytes");
        for byte in 0..file.len() {
            for bit in 0..8 {
                let mut bad = file.clone();
                bad[byte] ^= 1 << bit;
                assert_eq!(
                    decode_file(Kind::DISSIM, &bad),
                    None,
                    "flip at byte {byte} bit {bit} must miss"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_a_miss() {
        let file = encode_file(Kind::DISSIM, b"some payload bytes");
        for len in 0..file.len() {
            assert_eq!(decode_file(Kind::DISSIM, &file[..len]), None);
        }
    }

    #[test]
    fn trailing_garbage_is_a_miss() {
        let mut file = encode_file(Kind::DISSIM, b"payload");
        file.push(0);
        assert_eq!(decode_file(Kind::DISSIM, &file), None);
    }
}
