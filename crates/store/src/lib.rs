#![warn(missing_docs)]
//! Content-addressed on-disk artifact store for the clustering pipeline.
//!
//! The pipeline's expensive intermediates — segmentations, deduplicated
//! segment stores, condensed dissimilarity matrices with their neighbor
//! indices, auto-configured DBSCAN parameters, clusterings — are pure
//! functions of (trace bytes, segmenter configuration, dissimilarity
//! parameters). This crate caches them on disk under 128-bit content
//! keys derived from exactly those inputs, so a re-run of an analysis
//! is a handful of file reads instead of an O(n²) matrix build, and an
//! analysis of a *grown* trace can warm-start from the largest cached
//! prefix and compute only the new matrix entries.
//!
//! Design rules (DESIGN.md §"Artifact store"):
//!
//! * **A damaged cache is a slow run, never a wrong or failed one.**
//!   Every file carries a version, kind tag and whole-file checksum;
//!   truncation, bit flips, version bumps and structural violations all
//!   decode to `None`, which [`ArtifactStore::get`] counts as a miss.
//! * **Keys encode every input that affects the artifact's bits**, so
//!   there is no explicit invalidation — changing a parameter simply
//!   addresses different files.
//! * **Writes are atomic** (temp file + rename), so a crashed writer
//!   leaves at worst an orphaned temp file, not a torn artifact.
//!
//! The store is deliberately ignorant of the pipeline types' semantics:
//! it moves `Persist` payloads in and out of frames. What to key on and
//! when to probe lives with the callers (`fieldclust::AnalysisSession`).

pub mod artifacts;
pub mod codec;
pub mod digest;
pub mod format;

pub use artifacts::{decode_payload, encode_payload, Kind, Persist};
pub use codec::{Reader, Writer};
pub use digest::{fnv64, Key, KeyDigest};
pub use format::{decode_file, encode_file, FORMAT_VERSION, MAGIC};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    extended: AtomicU64,
}

/// A snapshot of the store's hit/miss/write counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Successful `get`s (file present, frame and payload valid).
    pub hits: u64,
    /// Failed `get`s — absent, truncated, corrupt, or wrong version.
    pub misses: u64,
    /// Successful `put`s.
    pub writes: u64,
    /// Matrices grown incrementally from a cached prefix.
    pub extended: u64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} writes={} extended={}",
            self.hits, self.misses, self.writes, self.extended
        )
    }
}

/// A content-addressed artifact cache rooted at one directory.
///
/// Cloning is cheap and clones share the statistics counters, so a
/// session can hold a clone while the caller keeps one for reporting.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
    counters: Arc<Counters>,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created — an unusable cache *directory* is a configuration
    /// error, unlike unusable cache *contents*.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            counters: Arc::new(Counters::default()),
        })
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file path an artifact of `kind` under `key` lives at.
    pub fn file_path(&self, kind: Kind, key: &Key) -> PathBuf {
        self.root.join(format!("{}-{}.bin", kind.name(), key.hex()))
    }

    /// Fetches and decodes the artifact under `key`, or `None` (counted
    /// as a miss) if it is absent or damaged in any way.
    pub fn get<T: Persist>(&self, key: &Key) -> Option<T> {
        let value = self.get_quiet::<T>(key);
        match value {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        value
    }

    /// [`get`](Self::get) without touching the hit/miss counters — for
    /// speculative probes (manifest prefix candidates) that should not
    /// skew the stats.
    pub fn get_quiet<T: Persist>(&self, key: &Key) -> Option<T> {
        let bytes = std::fs::read(self.file_path(T::KIND, key)).ok()?;
        let payload = format::decode_file(T::KIND, &bytes)?;
        decode_payload(payload)
    }

    /// Whether an artifact file exists under `key` (no decode).
    pub fn contains<T: Persist>(&self, key: &Key) -> bool {
        self.file_path(T::KIND, key).is_file()
    }

    /// Encodes and stores `value` under `key`, atomically (temp file +
    /// rename). Returns `false` — after warning on stderr — if the
    /// write failed; a read-only or full cache degrades the run to
    /// cold compute, it never fails it.
    pub fn put<T: Persist>(&self, key: &Key, value: &T) -> bool {
        let file = format::encode_file(T::KIND, &encode_payload(value));
        let path = self.file_path(T::KIND, key);
        match self.write_atomic(&path, &file) {
            Ok(()) => {
                self.counters.writes.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(e) => {
                eprintln!("warning: cache write to {} failed: {e}", path.display());
                false
            }
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        // Unique per process; concurrent writers of the *same* key race
        // benignly (both write identical content-addressed bytes).
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        std::fs::write(&tmp, bytes)?;
        let renamed = std::fs::rename(&tmp, path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }

    /// All `(item count, key)` entries of the manifest for `family`,
    /// ascending by item count. Empty if absent or damaged.
    ///
    /// A manifest lists, per `(artifact kind, parameters)` family, the
    /// keys of artifacts already stored for successive *prefixes* of a
    /// growing item sequence — the index that incremental matrix
    /// extension searches for its warm-start point.
    pub fn manifest_entries(&self, family: &Key) -> Vec<(usize, Key)> {
        let Ok(bytes) = std::fs::read(self.manifest_path(family)) else {
            return Vec::new();
        };
        let Some(payload) = format::decode_file(Kind::MANIFEST, &bytes) else {
            return Vec::new();
        };
        let mut r = Reader::new(payload);
        let Some(n) = r.count(24) else {
            return Vec::new();
        };
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let (Some(u), Some(raw)) = (r.usize(), r.take(16)) else {
                return Vec::new();
            };
            let mut key = [0u8; 16];
            key.copy_from_slice(raw);
            entries.push((u, Key(key)));
        }
        if !r.is_at_end() {
            return Vec::new();
        }
        entries.sort_by_key(|&(u, _)| u);
        entries
    }

    /// Records that the artifact for the first `u` items of `family`
    /// is stored under `key` (read-modify-write; exact duplicates
    /// dropped). Several keys may share one `u` — different item
    /// streams in the same parameter family; readers disambiguate by
    /// recomputing the expected key for their own stream.
    pub fn manifest_add(&self, family: &Key, u: usize, key: &Key) {
        let mut entries = self.manifest_entries(family);
        if entries.iter().any(|&(eu, ek)| eu == u && ek == *key) {
            return;
        }
        entries.push((u, *key));
        entries.sort_by_key(|&(u, _)| u);
        let mut w = Writer::new();
        w.usize(entries.len());
        for (u, k) in &entries {
            w.usize(*u);
            w.raw(&k.0);
        }
        let file = format::encode_file(Kind::MANIFEST, w.as_slice());
        let path = self.manifest_path(family);
        if let Err(e) = self.write_atomic(&path, &file) {
            eprintln!("warning: cache write to {} failed: {e}", path.display());
        }
    }

    fn manifest_path(&self, family: &Key) -> PathBuf {
        self.root
            .join(format!("{}-{}.bin", Kind::MANIFEST.name(), family.hex()))
    }

    /// Counts one incremental matrix extension (for stats reporting).
    pub fn record_extension(&self) {
        self.counters.extended.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
            extended: self.counters.extended.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Clustering, Label};

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("store-unit-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("open temp store")
    }

    fn key(b: u8) -> Key {
        Key([b; 16])
    }

    #[test]
    fn put_get_and_stats() {
        let store = temp_store("putget");
        let c = Clustering::from_labels(vec![Label::Cluster(0), Label::Noise]);
        assert_eq!(store.get::<Clustering>(&key(1)), None);
        assert!(store.put(&key(1), &c));
        assert_eq!(store.get::<Clustering>(&key(1)), Some(c));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.extended), (1, 1, 1, 0));
    }

    #[test]
    fn clones_share_stats() {
        let store = temp_store("clones");
        let clone = store.clone();
        let _ = clone.get::<Clustering>(&key(2));
        assert_eq!(store.stats().misses, 1);
        store.record_extension();
        assert_eq!(clone.stats().extended, 1);
    }

    #[test]
    fn manifest_roundtrip_sorted_and_deduped() {
        let store = temp_store("manifest");
        let fam = key(3);
        assert!(store.manifest_entries(&fam).is_empty());
        store.manifest_add(&fam, 50, &key(5));
        store.manifest_add(&fam, 10, &key(1));
        store.manifest_add(&fam, 50, &key(5)); // exact duplicate, ignored
        store.manifest_add(&fam, 10, &key(9)); // same u, other stream: kept
        let entries = store.manifest_entries(&fam);
        assert_eq!(entries.len(), 3);
        assert!(entries.contains(&(10, key(1))));
        assert!(entries.contains(&(10, key(9))));
        assert_eq!(entries.last(), Some(&(50, key(5))));
    }
}
