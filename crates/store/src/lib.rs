#![warn(missing_docs)]
//! Content-addressed on-disk artifact store for the clustering pipeline.
//!
//! The pipeline's expensive intermediates — segmentations, deduplicated
//! segment stores, condensed dissimilarity matrices with their neighbor
//! indices, auto-configured DBSCAN parameters, clusterings — are pure
//! functions of (trace bytes, segmenter configuration, dissimilarity
//! parameters). This crate caches them on disk under 128-bit content
//! keys derived from exactly those inputs, so a re-run of an analysis
//! is a handful of file reads instead of an O(n²) matrix build, and an
//! analysis of a *grown* trace can warm-start from the largest cached
//! prefix and compute only the new matrix entries.
//!
//! Design rules (DESIGN.md §"Artifact store"):
//!
//! * **A damaged cache is a slow run, never a wrong or failed one.**
//!   Every file carries a version, kind tag and whole-file checksum;
//!   truncation, bit flips, version bumps and structural violations all
//!   decode to `None`, which [`ArtifactStore::get`] counts as a miss.
//! * **Keys encode every input that affects the artifact's bits**, so
//!   there is no explicit invalidation — changing a parameter simply
//!   addresses different files.
//! * **Writes are atomic** (temp file + rename), so a crashed writer
//!   leaves at worst an orphaned temp file, not a torn artifact.
//!
//! The store is deliberately ignorant of the pipeline types' semantics:
//! it moves `Persist` payloads in and out of frames. What to key on and
//! when to probe lives with the callers (`fieldclust::AnalysisSession`).

pub mod artifacts;
pub mod codec;
pub mod digest;
pub mod format;
pub mod mmap;

pub use artifacts::{decode_payload, encode_payload, Kind, Persist};
pub use codec::{Reader, Writer};
pub use digest::{fnv64, Key, KeyDigest};
pub use format::{decode_file, encode_file, FORMAT_VERSION, MAGIC};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    extended: AtomicU64,
    mmap_reads: AtomicU64,
}

/// A snapshot of the store's hit/miss/write counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Successful `get`s (file present, frame and payload valid).
    pub hits: u64,
    /// Failed `get`s — absent, truncated, corrupt, or wrong version.
    pub misses: u64,
    /// Successful `put`s.
    pub writes: u64,
    /// Matrices grown incrementally from a cached prefix.
    pub extended: u64,
    /// Reads served zero-copy through a memory mapping (a subset of
    /// `hits + misses`; the rest took the heap-read fallback).
    pub mmap_reads: u64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} writes={} extended={} mmap_reads={}",
            self.hits, self.misses, self.writes, self.extended, self.mmap_reads
        )
    }
}

/// A byte budget for a capped [`ArtifactStore`]: after every write the
/// store evicts least-recently-used artifacts until its total on-disk
/// size fits the cap again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreBudget {
    /// Maximum total size of the cache directory's artifact files, in
    /// bytes.
    pub max_bytes: u64,
}

/// Advisory cross-process lock on one manifest file, held for the
/// duration of a read-modify-write.
///
/// Acquisition creates `<manifest>.lock` with `create_new` — atomic on
/// every platform the store targets — and spins with a 1 ms sleep while
/// someone else holds it. A lock file older than [`STALE_LOCK`] is
/// presumed abandoned by a crashed process and broken: real holders
/// keep it for microseconds (one manifest rewrite). Lock failures due
/// to an unwritable directory degrade to lockless operation — the
/// store's rule that a broken cache never fails a run extends to its
/// locks.
#[derive(Debug)]
struct ManifestLock {
    path: Option<PathBuf>,
}

/// Age after which a manifest lock file is presumed leaked by a dead
/// process and taken over.
const STALE_LOCK: std::time::Duration = std::time::Duration::from_secs(5);

/// Per-process sequence for unique lock-takeover names, so concurrent
/// breakers in one process never collide on the rename target.
static BREAK_SEQ: AtomicU64 = AtomicU64::new(0);

impl ManifestLock {
    fn acquire(path: PathBuf) -> Self {
        let deadline = std::time::Instant::now() + 2 * STALE_LOCK;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return Self { path: Some(path) },
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age > STALE_LOCK);
                    if stale || std::time::Instant::now() > deadline {
                        Self::break_lock(&path, std::time::Instant::now() > deadline);
                    } else {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                // Unwritable cache directory: proceed unlocked rather
                // than fail the run.
                Err(_) => return Self { path: None },
            }
        }
    }

    /// Breaks a presumed-stale lock by renaming it to a per-breaker
    /// unique name. The rename is atomic, so each lock-file incarnation
    /// is taken over by exactly one breaker — a plain `remove_file`
    /// here would let two waiters both judge the lock stale, with the
    /// second removal deleting a lock a third process freshly created
    /// after the first removal (two concurrent manifest writers). The
    /// winner re-judges the now-privately-owned file: genuinely stale
    /// (or past the acquisition deadline) means discard; a fresh one —
    /// we raced with a break-and-reacquire — is put back via
    /// `hard_link`, which cannot clobber any newer lock at the path.
    /// Either way the caller loops and re-contends on `create_new`.
    fn break_lock(path: &Path, past_deadline: bool) {
        let takeover = path.with_extension(format!(
            "lockbreak-{}-{}",
            std::process::id(),
            BREAK_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::rename(path, &takeover).is_err() {
            // Someone else broke it (or the holder released): just
            // re-contend.
            return;
        }
        let actually_stale = std::fs::metadata(&takeover)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age > STALE_LOCK);
        if !(actually_stale || past_deadline) {
            let _ = std::fs::hard_link(&takeover, path);
        }
        let _ = std::fs::remove_file(&takeover);
    }
}

impl Drop for ManifestLock {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A content-addressed artifact cache rooted at one directory.
///
/// Cloning is cheap and clones share the statistics counters, so a
/// session can hold a clone while the caller keeps one for reporting.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
    counters: Arc<Counters>,
    budget: Option<StoreBudget>,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created — an unusable cache *directory* is a configuration
    /// error, unlike unusable cache *contents*.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            counters: Arc::new(Counters::default()),
            budget: None,
        })
    }

    /// Caps the store at `budget`: every write triggers LRU eviction
    /// until the directory fits again (see [`StoreBudget`]). Recency is
    /// tracked in a ledger file updated on hits and writes; manifests
    /// are evicted only after every data artifact, and manifest entries
    /// pointing at an evicted artifact are pruned so warm-start probes
    /// do not chase dangling keys.
    pub fn with_budget(mut self, budget: StoreBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<StoreBudget> {
        self.budget
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Total size in bytes of all artifact files (`*.bin`) currently in
    /// the cache directory — what a [`StoreBudget`] caps.
    pub fn total_bytes(&self) -> u64 {
        self.artifact_files()
            .into_iter()
            .filter_map(|name| std::fs::metadata(self.root.join(name)).ok())
            .map(|m| m.len())
            .sum()
    }

    /// The file path an artifact of `kind` under `key` lives at.
    pub fn file_path(&self, kind: Kind, key: &Key) -> PathBuf {
        self.root.join(self.file_name(kind, key))
    }

    fn file_name(&self, kind: Kind, key: &Key) -> String {
        format!("{}-{}.bin", kind.name(), key.hex())
    }

    /// Fetches and decodes the artifact under `key`, or `None` (counted
    /// as a miss) if it is absent or damaged in any way.
    pub fn get<T: Persist>(&self, key: &Key) -> Option<T> {
        let value = self.get_quiet::<T>(key);
        match value {
            Some(_) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.touch_lru(&self.file_name(T::KIND, key));
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
            }
        };
        value
    }

    /// [`get`](Self::get) without touching the hit/miss counters — for
    /// speculative probes (manifest prefix candidates) that should not
    /// skew the stats. (The `mmap_reads` counter still ticks: it
    /// attributes I/O strategy, not cache effectiveness.)
    ///
    /// With the mmap read path enabled the file is mapped and its frame
    /// validated in place; the payload decodes straight from the mapped
    /// pages with no whole-file heap copy. A frame violation seen
    /// through the mapping is a definitive miss (the checksum verdict
    /// cannot change on a re-read); only a failure to *map* falls back
    /// to the byte-identical heap read.
    pub fn get_quiet<T: Persist>(&self, key: &Key) -> Option<T> {
        let path = self.file_path(T::KIND, key);
        #[cfg(all(feature = "mmap", unix))]
        if mmap::enabled() {
            if let Ok(verdict) = mmap::MappedArtifact::open(&path, T::KIND) {
                self.counters.mmap_reads.fetch_add(1, Ordering::Relaxed);
                return verdict.and_then(|mapped| decode_payload(mapped.payload()));
            }
        }
        let bytes = std::fs::read(path).ok()?;
        let payload = format::decode_file(T::KIND, &bytes)?;
        decode_payload(payload)
    }

    /// Whether an artifact file exists under `key` (no decode).
    pub fn contains<T: Persist>(&self, key: &Key) -> bool {
        self.file_path(T::KIND, key).is_file()
    }

    /// Encodes and stores `value` under `key`, atomically (temp file +
    /// rename). Returns `false` — after warning on stderr — if the
    /// write failed; a read-only or full cache degrades the run to
    /// cold compute, it never fails it.
    pub fn put<T: Persist>(&self, key: &Key, value: &T) -> bool {
        let file = format::encode_file(T::KIND, &encode_payload(value));
        let path = self.file_path(T::KIND, key);
        match self.write_atomic(&path, &file) {
            Ok(()) => {
                self.counters.writes.fetch_add(1, Ordering::Relaxed);
                self.touch_lru(&self.file_name(T::KIND, key));
                self.enforce_budget();
                true
            }
            Err(e) => {
                eprintln!("warning: cache write to {} failed: {e}", path.display());
                false
            }
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        // Unique per process; concurrent writers of the *same* key race
        // benignly (both write identical content-addressed bytes).
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        std::fs::write(&tmp, bytes)?;
        let renamed = std::fs::rename(&tmp, path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }

    /// All `(item count, key)` entries of the manifest for `family`,
    /// ascending by item count. Empty if absent or damaged.
    ///
    /// A manifest lists, per `(artifact kind, parameters)` family, the
    /// keys of artifacts already stored for successive *prefixes* of a
    /// growing item sequence — the index that incremental matrix
    /// extension searches for its warm-start point.
    pub fn manifest_entries(&self, family: &Key) -> Vec<(usize, Key)> {
        let Ok(bytes) = std::fs::read(self.manifest_path(family)) else {
            return Vec::new();
        };
        let Some(payload) = format::decode_file(Kind::MANIFEST, &bytes) else {
            return Vec::new();
        };
        let mut r = Reader::new(payload);
        let Some(n) = r.count(24) else {
            return Vec::new();
        };
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let (Some(u), Some(raw)) = (r.usize(), r.take(16)) else {
                return Vec::new();
            };
            let mut key = [0u8; 16];
            key.copy_from_slice(raw);
            entries.push((u, Key(key)));
        }
        if !r.is_at_end() {
            return Vec::new();
        }
        entries.sort_by_key(|&(u, _)| u);
        entries
    }

    /// Records that the artifact for the first `u` items of `family`
    /// is stored under `key` (read-modify-write; exact duplicates
    /// dropped). Several keys may share one `u` — different item
    /// streams in the same parameter family; readers disambiguate by
    /// recomputing the expected key for their own stream.
    ///
    /// The read-modify-write holds the family's advisory lock, so
    /// concurrent writers — the `ftcd` daemon and an offline CLI run
    /// sharing one `--cache-dir`, or parallel jobs inside the daemon —
    /// never lose each other's entries.
    pub fn manifest_add(&self, family: &Key, u: usize, key: &Key) {
        {
            let _lock = ManifestLock::acquire(self.manifest_lock_path(family));
            let mut entries = self.manifest_entries(family);
            if entries.iter().any(|&(eu, ek)| eu == u && ek == *key) {
                return;
            }
            entries.push((u, *key));
            entries.sort_by_key(|&(u, _)| u);
            self.write_manifest(family, &entries);
        }
        // Budget enforcement takes per-family locks of its own; the
        // current family's lock is released first so they never nest.
        self.enforce_budget();
    }

    fn write_manifest(&self, family: &Key, entries: &[(usize, Key)]) {
        let mut w = Writer::new();
        w.usize(entries.len());
        for (u, k) in entries {
            w.usize(*u);
            w.raw(&k.0);
        }
        let file = format::encode_file(Kind::MANIFEST, w.as_slice());
        let path = self.manifest_path(family);
        if let Err(e) = self.write_atomic(&path, &file) {
            eprintln!("warning: cache write to {} failed: {e}", path.display());
        }
    }

    fn manifest_path(&self, family: &Key) -> PathBuf {
        self.root.join(self.file_name(Kind::MANIFEST, family))
    }

    fn manifest_lock_path(&self, family: &Key) -> PathBuf {
        self.manifest_path(family).with_extension("lock")
    }

    /// All artifact file names (`*.bin`) in the cache directory.
    fn artifact_files(&self) -> Vec<String> {
        let Ok(dir) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        dir.filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".bin"))
            .collect()
    }

    fn ledger_path(&self) -> PathBuf {
        self.root.join("lru.list")
    }

    /// The LRU ledger: artifact file names, least recently used first.
    fn lru_order(&self) -> Vec<String> {
        std::fs::read_to_string(self.ledger_path())
            .map(|s| {
                s.lines()
                    .filter(|l| !l.is_empty())
                    .map(String::from)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Moves `name` to the most-recent end of the LRU ledger. Only
    /// maintained on capped stores; concurrent writers race benignly
    /// (a stale ledger skews eviction order, never correctness).
    fn touch_lru(&self, name: &str) {
        if self.budget.is_none() {
            return;
        }
        let mut order = self.lru_order();
        order.retain(|n| n != name);
        order.push(name.to_string());
        let _ = std::fs::write(self.ledger_path(), order.join("\n"));
    }

    fn ledger_remove(&self, name: &str) {
        let mut order = self.lru_order();
        let before = order.len();
        order.retain(|n| n != name);
        if order.len() != before {
            let _ = std::fs::write(self.ledger_path(), order.join("\n"));
        }
    }

    /// Evicts least-recently-used artifacts until the directory fits the
    /// budget again. Data artifacts go first (ledger order, then any
    /// unledgered files in name order); manifests only as a last resort.
    /// Every evicted data artifact is also pruned from any manifest that
    /// references it, so warm-start probes do not chase dangling keys.
    fn enforce_budget(&self) {
        let Some(budget) = self.budget else { return };
        if self.total_bytes() <= budget.max_bytes {
            return;
        }
        let manifest_prefix = format!("{}-", Kind::MANIFEST.name());
        let ledger = self.lru_order();
        let mut files = self.artifact_files();
        files.sort();
        // (class, recency): ledgered data files evict in ledger order,
        // unledgered data files next (name order), manifests last.
        files.sort_by_key(|name| {
            if name.starts_with(&manifest_prefix) {
                return (2, 0);
            }
            match ledger.iter().position(|l| l == name) {
                Some(p) => (0, p),
                None => (1, 0),
            }
        });
        for name in files {
            if self.total_bytes() <= budget.max_bytes {
                break;
            }
            let _ = std::fs::remove_file(self.root.join(&name));
            self.ledger_remove(&name);
            if !name.starts_with(&manifest_prefix) {
                if let Some(hex) = name.strip_suffix(".bin").and_then(|s| s.rsplit('-').next()) {
                    if let Some(key) = Key::from_hex(hex) {
                        self.prune_manifest_references(&key);
                    }
                }
            }
        }
    }

    /// Drops every manifest entry pointing at `evicted`; empty manifests
    /// are removed entirely. Each family's read-modify-write holds its
    /// advisory lock so a concurrent [`manifest_add`](Self::manifest_add)
    /// is never overwritten with stale entries.
    fn prune_manifest_references(&self, evicted: &Key) {
        let manifest_prefix = format!("{}-", Kind::MANIFEST.name());
        for name in self.artifact_files() {
            let Some(hex) = name
                .strip_prefix(&manifest_prefix)
                .and_then(|s| s.strip_suffix(".bin"))
            else {
                continue;
            };
            let Some(family) = Key::from_hex(hex) else {
                continue;
            };
            let _lock = ManifestLock::acquire(self.manifest_lock_path(&family));
            let entries = self.manifest_entries(&family);
            let kept: Vec<(usize, Key)> = entries
                .iter()
                .copied()
                .filter(|(_, k)| k != evicted)
                .collect();
            if kept.len() == entries.len() {
                continue;
            }
            if kept.is_empty() {
                let _ = std::fs::remove_file(self.root.join(&name));
            } else {
                self.write_manifest(&family, &kept);
            }
        }
    }

    /// Counts one incremental matrix extension (for stats reporting).
    pub fn record_extension(&self) {
        self.counters.extended.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
            extended: self.counters.extended.load(Ordering::Relaxed),
            mmap_reads: self.counters.mmap_reads.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Clustering, Label};

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("store-unit-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("open temp store")
    }

    fn key(b: u8) -> Key {
        Key([b; 16])
    }

    #[test]
    fn put_get_and_stats() {
        let store = temp_store("putget");
        let c = Clustering::from_labels(vec![Label::Cluster(0), Label::Noise]);
        assert_eq!(store.get::<Clustering>(&key(1)), None);
        assert!(store.put(&key(1), &c));
        assert_eq!(store.get::<Clustering>(&key(1)), Some(c));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.extended), (1, 1, 1, 0));
    }

    #[test]
    fn clones_share_stats() {
        let store = temp_store("clones");
        let clone = store.clone();
        let _ = clone.get::<Clustering>(&key(2));
        assert_eq!(store.stats().misses, 1);
        store.record_extension();
        assert_eq!(clone.stats().extended, 1);
    }

    #[test]
    fn capped_store_never_exceeds_budget_and_evicts_lru() {
        let store = temp_store("budget").with_budget(StoreBudget { max_bytes: 400 });
        let big = Clustering::from_labels(vec![Label::Cluster(0); 20]);
        assert!(store.put(&key(1), &big));
        assert!(store.total_bytes() <= 400);
        assert!(store.put(&key(2), &big));
        assert!(store.total_bytes() <= 400);
        // A hit refreshes key 1, so key 2 becomes the LRU victim.
        assert!(store.get::<Clustering>(&key(1)).is_some());
        assert!(store.put(&key(3), &big));
        assert!(store.total_bytes() <= 400);
        assert!(store.contains::<Clustering>(&key(1)));
        assert!(!store.contains::<Clustering>(&key(2)));
        assert!(store.contains::<Clustering>(&key(3)));
    }

    #[test]
    fn capped_store_warm_hits_still_verify_checksums() {
        let store = temp_store("budgetsum").with_budget(StoreBudget { max_bytes: 10_000 });
        let c = Clustering::from_labels(vec![Label::Cluster(0), Label::Cluster(1), Label::Noise]);
        assert!(store.put(&key(4), &c));
        assert_eq!(store.get::<Clustering>(&key(4)), Some(c));
        // A bit flip on disk must read as a miss, budget or not.
        let path = store.file_path(Kind::CLUSTERING, &key(4));
        let mut bytes = std::fs::read(&path).expect("read artifact");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).expect("rewrite artifact");
        assert_eq!(store.get::<Clustering>(&key(4)), None);
    }

    #[test]
    fn eviction_prunes_manifest_references() {
        let store = temp_store("budgetman").with_budget(StoreBudget { max_bytes: 300 });
        let c = Clustering::from_labels(vec![Label::Cluster(0); 20]);
        let fam = key(9);
        assert!(store.put(&key(1), &c));
        store.manifest_add(&fam, 20, &key(1));
        assert_eq!(store.manifest_entries(&fam), vec![(20, key(1))]);
        // The second artifact pushes the store over budget: key 1 is
        // evicted and its manifest entry pruned with it.
        assert!(store.put(&key(2), &c));
        assert!(store.total_bytes() <= 300);
        assert!(!store.contains::<Clustering>(&key(1)));
        assert!(store
            .manifest_entries(&fam)
            .iter()
            .all(|&(_, k)| k != key(1)));
    }

    #[test]
    fn mmap_and_heap_reads_agree() {
        let store = temp_store("mmapeq");
        let c = Clustering::from_labels(vec![Label::Cluster(0), Label::Cluster(1), Label::Noise]);
        assert!(store.put(&key(7), &c));
        let was_enabled = mmap::enabled();
        // The store's read path (mapped when enabled) …
        let via_store = store.get::<Clustering>(&key(7));
        // … against the explicit heap read of the same file.
        let bytes =
            std::fs::read(store.file_path(Kind::CLUSTERING, &key(7))).expect("read artifact");
        let via_heap: Option<Clustering> =
            format::decode_file(Kind::CLUSTERING, &bytes).and_then(decode_payload);
        assert_eq!(via_store, via_heap);
        assert_eq!(via_store, Some(c));
        if was_enabled && mmap::enabled() {
            assert!(store.stats().mmap_reads >= 1, "mapped read should count");
        }
    }

    #[test]
    fn manifest_roundtrip_sorted_and_deduped() {
        let store = temp_store("manifest");
        let fam = key(3);
        assert!(store.manifest_entries(&fam).is_empty());
        store.manifest_add(&fam, 50, &key(5));
        store.manifest_add(&fam, 10, &key(1));
        store.manifest_add(&fam, 50, &key(5)); // exact duplicate, ignored
        store.manifest_add(&fam, 10, &key(9)); // same u, other stream: kept
        let entries = store.manifest_entries(&fam);
        assert_eq!(entries.len(), 3);
        assert!(entries.contains(&(10, key(1))));
        assert!(entries.contains(&(10, key(9))));
        assert_eq!(entries.last(), Some(&(50, key(5))));
    }
}
