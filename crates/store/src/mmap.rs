//! Zero-copy artifact reads through a memory mapping.
//!
//! A warm cache hit used to cost a whole-file `std::fs::read` — one
//! heap allocation plus one full copy of the artifact bytes — before
//! the decoder even started. For the large artifacts (condensed
//! matrices, neighbor indices, matrix tiles, vantage-point trees) that
//! copy dominates the warm path. This module maps the file read-only
//! instead: [`MappedArtifact::open`] validates the `FTCA` frame —
//! magic, version, kind, length, and the whole-file FNV trailer —
//! exactly once against the mapped pages, and the payload decoder then
//! reads straight from the mapping. No artifact-sized heap buffer is
//! ever allocated; the kernel pages the file in on demand and drops
//! clean pages under memory pressure.
//!
//! # Why the payload is still *decoded*, not borrowed
//!
//! The frame header is 17 bytes (`magic(4) | version(4) | kind(1) |
//! len(8)`), so the payload starts at an unaligned offset: handing out
//! typed `&[f64]`/`&[u32]` borrows of the mapping would be unsound.
//! The decoders therefore still build owned artifacts value-by-value —
//! the win is eliminating the redundant whole-file heap copy (and its
//! transient 2× peak while both buffer and artifact are live), not
//! eliminating the decode.
//!
//! # Safety
//!
//! The crate is std-only, so the mapping goes through a minimal raw
//! `mmap`/`munmap` shim (no libc crate). It is confined to this module
//! and gated behind the default-on `mmap` cargo feature (plus a
//! runtime switch, [`set_enabled`] / `FTC_STORE_NO_MMAP=1`); with the
//! feature off or the switch thrown, every read falls back to the
//! heap-read path, which is pinned byte-identical by the store's
//! equivalence tests.
//!
//! Mapping a file another process truncates would turn later reads
//! into `SIGBUS`. The store's write discipline rules that out: artifact
//! files are immutable once written, replaced only via atomic rename
//! (the mapping keeps the old inode alive), and evicted via unlink
//! (likewise). A file that shrinks anyway — an outside actor editing
//! the cache directory in place — is outside the store's crash model,
//! which already treats a tampered cache as undefined for liveness and
//! guarantees correctness only through the checksum.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::artifacts::Kind;
use crate::format;

/// Runtime kill switch, flipped by [`set_enabled`]. Distinct from the
/// `FTC_STORE_NO_MMAP` environment variable so an embedding process
/// (e.g. the `ftcd` daemon's `--no-mmap` flag) can opt out without
/// mutating its own environment.
static MMAP_DISABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables the mmap read path process-wide at runtime.
/// Disabled, every artifact read uses the heap-read fallback —
/// byte-identical results, one extra copy.
pub fn set_enabled(enabled: bool) {
    MMAP_DISABLED.store(!enabled, Ordering::Relaxed);
}

/// Whether artifact reads currently go through the mapping: the `mmap`
/// cargo feature is on, the platform shim exists (unix), the runtime
/// switch has not been thrown, and `FTC_STORE_NO_MMAP` is unset/`0`.
pub fn enabled() -> bool {
    if !cfg!(all(feature = "mmap", unix)) {
        return false;
    }
    if MMAP_DISABLED.load(Ordering::Relaxed) {
        return false;
    }
    match std::env::var_os("FTC_STORE_NO_MMAP") {
        None => true,
        Some(v) => v.is_empty() || v == *"0",
    }
}

/// A read-only memory mapping of one whole file, unmapped on drop.
#[cfg(all(feature = "mmap", unix))]
#[derive(Debug)]
pub struct Region {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is read-only and `Region` owns it exclusively;
// sharing immutable views across threads is safe.
#[cfg(all(feature = "mmap", unix))]
unsafe impl Send for Region {}
#[cfg(all(feature = "mmap", unix))]
unsafe impl Sync for Region {}

#[cfg(all(feature = "mmap", unix))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

#[cfg(all(feature = "mmap", unix))]
impl Region {
    /// Maps the file at `path` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// Any I/O error opening or statting the file, `InvalidInput` for
    /// an empty file (zero-length mappings are an `EINVAL`), and the
    /// OS error if the `mmap` call itself fails — callers fall back to
    /// the heap read on every one of these.
    pub fn map_path(path: &Path) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 || len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "unmappable file length",
            ));
        }
        // SAFETY: fd is valid for the duration of the call; a private
        // read-only mapping of a regular file has no aliasing
        // obligations on our side. POSIX keeps the mapping alive after
        // the fd closes.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len as usize,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr.cast(),
            len: len as usize,
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, valid until `munmap` in Drop; the file is never
        // truncated in place (see module docs).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(all(feature = "mmap", unix))]
impl Drop for Region {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` are exactly what mmap returned.
        unsafe {
            sys::munmap(self.ptr.cast(), self.len);
        }
    }
}

/// A mapped artifact file whose `FTCA` frame — header fields and FNV
/// trailer — has been validated once against the mapping. The payload
/// is served as a borrow of the mapped pages.
#[cfg(all(feature = "mmap", unix))]
#[derive(Debug)]
pub struct MappedArtifact {
    region: Region,
    payload: std::ops::Range<usize>,
}

#[cfg(all(feature = "mmap", unix))]
impl MappedArtifact {
    /// Maps the file and validates its frame.
    ///
    /// Returns `Ok(Some(_))` for a valid artifact of `kind`,
    /// `Ok(None)` for a file that mapped fine but fails any frame
    /// check — a definitive cache miss; re-reading it onto the heap
    /// could not change the verdict — and `Err` when the mapping
    /// itself failed, which callers treat as "fall back to the heap
    /// read".
    pub fn open(path: &Path, kind: Kind) -> std::io::Result<Option<Self>> {
        let region = Region::map_path(path)?;
        let payload = match format::decode_file(kind, region.bytes()) {
            Some(p) => {
                let base = region.bytes().as_ptr() as usize;
                let start = p.as_ptr() as usize - base;
                start..start + p.len()
            }
            None => return Ok(None),
        };
        Ok(Some(Self { region, payload }))
    }

    /// The validated payload, borrowed from the mapping.
    pub fn payload(&self) -> &[u8] {
        &self.region.bytes()[self.payload.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(all(feature = "mmap", unix))]
    mod mapped {
        use super::super::*;

        fn temp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
            let path =
                std::env::temp_dir().join(format!("store-mmap-{}-{tag}.bin", std::process::id()));
            std::fs::write(&path, bytes).expect("write temp artifact");
            path
        }

        #[test]
        fn mapped_payload_matches_heap_read() {
            let payload: Vec<u8> = (0u16..600).map(|i| (i % 251) as u8).collect();
            let file = format::encode_file(Kind::DISSIM, &payload);
            let path = temp_file("eq", &file);
            let mapped = MappedArtifact::open(&path, Kind::DISSIM)
                .expect("map")
                .expect("valid frame");
            let heap = std::fs::read(&path).expect("read");
            let heap_payload = format::decode_file(Kind::DISSIM, &heap).expect("valid frame");
            assert_eq!(mapped.payload(), heap_payload);
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn every_flipped_byte_is_a_definitive_miss() {
            let file = format::encode_file(Kind::VPTREE, b"tree bytes under test");
            for at in 0..file.len() {
                let mut bad = file.clone();
                bad[at] ^= 0x40;
                let path = temp_file(&format!("flip{at}"), &bad);
                let verdict = MappedArtifact::open(&path, Kind::VPTREE).expect("map");
                assert!(verdict.is_none(), "flip at byte {at} must miss");
                let _ = std::fs::remove_file(&path);
            }
        }

        #[test]
        fn wrong_kind_and_truncation_miss_through_the_mapping() {
            let file = format::encode_file(Kind::TILE, b"tile payload");
            let path = temp_file("kind", &file);
            assert!(MappedArtifact::open(&path, Kind::DISSIM)
                .expect("map")
                .is_none());
            std::fs::write(&path, &file[..file.len() - 3]).expect("truncate");
            assert!(MappedArtifact::open(&path, Kind::TILE)
                .expect("map")
                .is_none());
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn missing_and_empty_files_are_map_errors_not_misses() {
            let gone =
                std::env::temp_dir().join(format!("store-mmap-{}-absent.bin", std::process::id()));
            let _ = std::fs::remove_file(&gone);
            assert!(MappedArtifact::open(&gone, Kind::DISSIM).is_err());
            let path = temp_file("empty", b"");
            assert!(MappedArtifact::open(&path, Kind::DISSIM).is_err());
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn runtime_switch_gates_enabled() {
        // Other tests in this crate do not toggle the switch, so the
        // sequence below is race-free in practice.
        set_enabled(true);
        let baseline = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert_eq!(enabled(), baseline);
    }
}
