//! Regression tests for concurrent manifest read-modify-writes.
//!
//! PR 5's daemon shares one `--cache-dir` between its own parallel jobs
//! and any offline CLI run the analyst launches alongside it. Before
//! per-manifest advisory locking, two simultaneous `manifest_add` calls
//! could interleave read → write and silently drop one entry; these
//! tests hammer one manifest from many threads and assert nothing is
//! lost.

use store::{ArtifactStore, Key};

fn temp_store(tag: &str) -> ArtifactStore {
    let dir = std::env::temp_dir().join(format!("store-manlock-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactStore::open(dir).expect("open temp store")
}

fn key(hi: u8, lo: u8) -> Key {
    let mut b = [0u8; 16];
    b[0] = hi;
    b[1] = lo;
    Key(b)
}

#[test]
fn concurrent_adds_to_one_manifest_lose_nothing() {
    let store = temp_store("hammer");
    let family = key(0xff, 0xff);
    const THREADS: u8 = 8;
    const PER_THREAD: u8 = 25;

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = store.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Distinct (u, key) per add so every entry must survive.
                    let u = usize::from(t) * usize::from(PER_THREAD) + usize::from(i);
                    store.manifest_add(&family, u, &key(t, i));
                }
            });
        }
    });

    let entries = store.manifest_entries(&family);
    assert_eq!(
        entries.len(),
        usize::from(THREADS) * usize::from(PER_THREAD),
        "concurrent manifest adds dropped entries"
    );
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let u = usize::from(t) * usize::from(PER_THREAD) + usize::from(i);
            assert!(
                entries.contains(&(u, key(t, i))),
                "entry ({u}, key({t},{i})) lost"
            );
        }
    }
    // The lock file is released once everyone is done.
    let locks: Vec<_> = std::fs::read_dir(store.root())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "lock"))
        .collect();
    assert!(locks.is_empty(), "leaked lock files: {locks:?}");
}

#[test]
fn two_store_handles_share_one_directory() {
    // Same directory opened twice — the cross-process shape (the daemon
    // and an offline CLI run), minus the second process.
    let a = temp_store("twohandles");
    let b = ArtifactStore::open(a.root()).expect("reopen");
    let family = key(0xee, 0xee);

    std::thread::scope(|scope| {
        for (t, store) in [a.clone(), b].into_iter().enumerate() {
            scope.spawn(move || {
                for i in 0..40u8 {
                    store.manifest_add(&family, t * 40 + usize::from(i), &key(t as u8, i));
                }
            });
        }
    });

    assert_eq!(a.manifest_entries(&family).len(), 80);
}

#[test]
fn concurrent_breakers_of_one_stale_lock_lose_nothing() {
    // Several waiters can judge the same lock stale at once. Breaking
    // by atomic rename means exactly one of them takes each lock-file
    // incarnation over — a plain remove could delete a lock a third
    // thread freshly created after the first removal, letting two
    // writers interleave and drop entries.
    let store = temp_store("stalerace");
    let family = key(0xcc, 0xcc);
    let lock_path = store
        .root()
        .join("manifest-cccc0000000000000000000000000000.lock");
    std::fs::write(&lock_path, b"pid 0").unwrap();
    let _ = std::process::Command::new("touch")
        .args(["-m", "-d", "2000-01-01T00:00:00"])
        .arg(&lock_path)
        .status();

    const THREADS: u8 = 6;
    const PER_THREAD: u8 = 10;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = store.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let u = usize::from(t) * usize::from(PER_THREAD) + usize::from(i);
                    store.manifest_add(&family, u, &key(t, i));
                }
            });
        }
    });

    assert_eq!(
        store.manifest_entries(&family).len(),
        usize::from(THREADS) * usize::from(PER_THREAD),
        "entries lost around stale-lock takeover"
    );
    // Neither lock files nor rename-takeover temp files may leak.
    let leftovers: Vec<_> = std::fs::read_dir(store.root())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| !n.ends_with(".bin"))
        .collect();
    assert!(leftovers.is_empty(), "leaked lock artifacts: {leftovers:?}");
}

#[test]
fn stale_lock_is_broken_not_waited_on_forever() {
    let store = temp_store("stale");
    let family = key(0xdd, 0xdd);
    // Simulate a crashed holder: a lock file nobody will ever release,
    // backdated past the staleness horizon (std can't set mtime, so
    // shell out to `touch`; if that fails the acquisition deadline
    // still bounds the wait — just slower).
    let lock_path = store
        .root()
        .join("manifest-dddd0000000000000000000000000000.lock");
    std::fs::write(&lock_path, b"pid 0").unwrap();
    let _ = std::process::Command::new("touch")
        .args(["-m", "-d", "2000-01-01T00:00:00"])
        .arg(&lock_path)
        .status();
    let start = std::time::Instant::now();
    store.manifest_add(&family, 1, &key(1, 1));
    assert_eq!(store.manifest_entries(&family).len(), 1);
    // Bounded even if the backdate failed: the acquisition deadline
    // (2 × STALE_LOCK = 10 s) caps the wait for a fresh-looking orphan.
    assert!(start.elapsed() < std::time::Duration::from_secs(15));
}
