//! Golden-file round-trips and corruption behaviour through the real
//! on-disk store: for every artifact type, a stored file reads back
//! bit-identically, and a damaged file — truncated, header bit flipped,
//! body bit flipped, or re-framed under a different format version —
//! reads as a clean cache miss, never a panic or an error.

use cluster::{Clustering, Label, SelectedParams};
use dissim::{CondensedMatrix, DissimArtifact, NeighborIndex};
use segment::{MessageSegments, TraceSegmentation};
use store::{ArtifactStore, Key, Persist};

fn temp_store(tag: &str) -> ArtifactStore {
    let dir = std::env::temp_dir().join(format!("store-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactStore::open(dir).expect("open temp store")
}

fn key(b: u8) -> Key {
    Key([b; 16])
}

fn sample_matrix() -> CondensedMatrix {
    CondensedMatrix::build(9, |i, j| ((i * 13 + j * 7) as f64).sqrt() / 3.0)
}

/// Stores `value`, then damages the file four ways; each damaged file
/// must read as `None` while the intact file round-trips.
fn assert_roundtrip_and_corruption<T>(tag: &str, value: T, check: impl Fn(&T, &T))
where
    T: Persist,
{
    let store = temp_store(tag);
    let k = key(42);
    assert!(store.get::<T>(&k).is_none(), "empty store must miss");
    assert!(store.put(&k, &value));
    let back = store.get::<T>(&k).expect("intact file must hit");
    check(&value, &back);

    let path = store.file_path(T::KIND, &k);
    let golden = std::fs::read(&path).expect("read golden file");
    assert!(golden.len() > 17, "frame is 17+8 bytes minimum");

    // Truncation, at several depths including mid-header and mid-body.
    for cut in [0, 3, 8, golden.len() / 2, golden.len() - 1] {
        std::fs::write(&path, &golden[..cut]).unwrap();
        assert!(
            store.get::<T>(&k).is_none(),
            "{tag}: truncation to {cut} bytes must miss"
        );
    }

    // A flipped bit in the header (magic/version/kind/length region).
    let mut bad = golden.clone();
    bad[5] ^= 0x10;
    std::fs::write(&path, &bad).unwrap();
    assert!(store.get::<T>(&k).is_none(), "{tag}: header flip must miss");

    // A flipped bit in the payload body.
    let mut bad = golden.clone();
    let mid = golden.len() / 2;
    bad[mid] ^= 0x01;
    std::fs::write(&path, &bad).unwrap();
    assert!(store.get::<T>(&k).is_none(), "{tag}: body flip must miss");

    // A consistent file written under a different format version: bump
    // the version field and re-stamp the checksum so only the version
    // check can reject it.
    let mut other_version = golden.clone();
    other_version[4] = other_version[4].wrapping_add(1);
    let body_end = other_version.len() - 8;
    let sum = store::fnv64(&other_version[..body_end]);
    other_version[body_end..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &other_version).unwrap();
    assert!(
        store.get::<T>(&k).is_none(),
        "{tag}: version mismatch must miss"
    );

    // Restoring the golden bytes hits again — the store held no state.
    std::fs::write(&path, &golden).unwrap();
    let back = store.get::<T>(&k).expect("restored file must hit");
    check(&value, &back);
}

#[test]
fn segmentation_corruption_is_a_miss() {
    let seg = TraceSegmentation {
        messages: vec![
            MessageSegments::from_cuts(12, &[4, 6, 11]),
            MessageSegments::from_cuts(3, &[]),
            MessageSegments::from_cuts(0, &[]),
        ],
    };
    assert_roundtrip_and_corruption("seg", seg, |a, b| assert_eq!(a, b));
}

#[test]
fn matrix_corruption_is_a_miss_and_roundtrip_is_bitwise() {
    assert_roundtrip_and_corruption("matrix", sample_matrix(), |a, b| {
        assert_eq!(a.len(), b.len());
        let bits = |m: &CondensedMatrix| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a), bits(b), "matrix round-trip must be bitwise");
    });
}

#[test]
fn neighbor_index_corruption_is_a_miss() {
    let ix = NeighborIndex::build(&sample_matrix());
    assert_roundtrip_and_corruption("neighbors", ix, |a, b| assert_eq!(a, b));
}

#[test]
fn dissim_artifact_corruption_is_a_miss() {
    let mut artifact = DissimArtifact::from_matrix(sample_matrix(), 1);
    artifact.neighbors(); // persist the index alongside the matrix
    assert_roundtrip_and_corruption("artifact", artifact, |a, b| {
        assert_eq!(a.matrix(), b.matrix());
        assert_eq!(a.neighbors_built(), b.neighbors_built());
    });
}

#[test]
fn selection_corruption_is_a_miss() {
    let params = SelectedParams {
        epsilon: 0.031_25,
        min_samples: 3,
        k: 2,
        ecdf_values: vec![0.01, 0.02, 0.5, 0.9],
        smoothed_curve: vec![(0.0, 0.0), (0.25, 0.4), (1.0, 1.0)],
    };
    assert_roundtrip_and_corruption("selection", params, |a, b| {
        assert_eq!(a.epsilon.to_bits(), b.epsilon.to_bits());
        assert_eq!(a, b);
    });
}

#[test]
fn clustering_corruption_is_a_miss() {
    let clustering = Clustering::from_labels(vec![
        Label::Cluster(0),
        Label::Cluster(0),
        Label::Noise,
        Label::Cluster(1),
        Label::Cluster(0),
        Label::Noise,
    ]);
    assert_roundtrip_and_corruption("clustering", clustering, |a, b| assert_eq!(a, b));
}

#[test]
fn wrong_kind_on_disk_is_a_miss() {
    // A valid clustering file renamed to where a matrix should live:
    // the kind tag in the frame rejects it.
    let store = temp_store("crosskind");
    let k = key(7);
    let clustering = Clustering::from_labels(vec![Label::Noise]);
    assert!(store.put(&k, &clustering));
    let from = store.file_path(<Clustering as Persist>::KIND, &k);
    let to = store.file_path(<CondensedMatrix as Persist>::KIND, &k);
    std::fs::copy(&from, &to).unwrap();
    assert!(store.get::<CondensedMatrix>(&k).is_none());
}

#[test]
fn stats_track_the_degraded_path() {
    let store = temp_store("stats");
    let k = key(9);
    let m = sample_matrix();
    let _ = store.get::<CondensedMatrix>(&k); // miss
    store.put(&k, &m); // write
    let _ = store.get::<CondensedMatrix>(&k); // hit
    std::fs::write(
        store.file_path(<CondensedMatrix as Persist>::KIND, &k),
        b"x",
    )
    .unwrap();
    let _ = store.get::<CondensedMatrix>(&k); // corrupt -> miss
    let s = store.stats();
    assert_eq!((s.hits, s.misses, s.writes), (1, 2, 1));
}
