//! Error type for trace handling.

/// Errors produced while reading, writing or decapsulating traces.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The pcap file magic was not recognized.
    BadMagic(u32),
    /// A pcap record or frame was shorter than its header demands.
    Truncated {
        /// What was being parsed when the data ran out.
        context: &'static str,
    },
    /// A frame used an encapsulation this reader does not understand.
    UnsupportedEncapsulation {
        /// The offending EtherType or protocol number.
        code: u16,
    },
    /// A length field inside a header was inconsistent with the data.
    InvalidHeader {
        /// What was being parsed.
        context: &'static str,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "unrecognized pcap magic 0x{m:08x}"),
            TraceError::Truncated { context } => {
                write!(f, "truncated data while parsing {context}")
            }
            TraceError::UnsupportedEncapsulation { code } => {
                write!(f, "unsupported encapsulation 0x{code:04x}")
            }
            TraceError::InvalidHeader { context } => {
                write!(f, "inconsistent length field in {context}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
