#![warn(missing_docs)]
//! Network trace substrate for protocol reverse engineering.
//!
//! This crate provides everything the field data type clustering pipeline
//! (Kleber et al., DSN-W 2022) needs to get from a packet capture to a
//! clean list of protocol payloads:
//!
//! * [`Message`] / [`Trace`] — the in-memory model: one payload per
//!   message plus the flow metadata (timestamps, endpoints) that
//!   context-dependent baselines like FieldHunter require,
//! * [`pcap`] — a self-contained reader/writer for the classic libpcap
//!   file format with Ethernet II, IPv4, UDP and TCP
//!   encapsulation/decapsulation,
//! * [`preprocess`] — the paper's §III-A preprocessing: protocol
//!   filtering, payload de-duplication and trace truncation.
//!
//! # Examples
//!
//! Round-tripping a trace through a pcap file:
//!
//! ```
//! use trace::{Message, Trace, Endpoint};
//! use bytes::Bytes;
//!
//! let msg = Message::builder(Bytes::from_static(b"\x01\x02\x03\x04"))
//!     .timestamp_micros(1_000_000)
//!     .source(Endpoint::udp([10, 0, 0, 1], 123))
//!     .destination(Endpoint::udp([10, 0, 0, 2], 123))
//!     .build();
//! let trace = Trace::new("demo", vec![msg]);
//!
//! let bytes = trace::pcap::write_to_vec(&trace)?;
//! let back = trace::pcap::read_from_slice(&bytes, "demo")?;
//! assert_eq!(back.len(), 1);
//! assert_eq!(back.messages()[0].payload(), &trace.messages()[0].payload()[..]);
//! # Ok::<(), trace::TraceError>(())
//! ```

pub mod message;
pub mod net;
pub mod pcap;
pub mod pcapng;
pub mod preprocess;
pub mod reassembly;
pub mod stats;

mod error;

pub use error::TraceError;
pub use message::{Addr, Direction, Endpoint, Message, MessageBuilder, Transport};
pub use preprocess::Preprocessor;

use serde::{Deserialize, Serialize};

/// An ordered collection of messages of (presumably) one protocol.
///
/// A `Trace` is what every stage of the pipeline consumes: the segmenters
/// iterate its payloads, FieldHunter additionally uses its flow metadata,
/// and the evaluation counts its bytes for coverage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    messages: Vec<Message>,
}

impl Trace {
    /// Creates a trace from a name and messages.
    pub fn new(name: impl Into<String>, messages: Vec<Message>) -> Self {
        Self {
            name: name.into(),
            messages,
        }
    }

    /// The trace name (typically the protocol, e.g. `"ntp"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The messages in capture order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the trace holds no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Total number of payload bytes across all messages; the denominator
    /// of the paper's coverage metric.
    pub fn total_payload_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.payload().len()).sum()
    }

    /// Iterates over the messages.
    pub fn iter(&self) -> std::slice::Iter<'_, Message> {
        self.messages.iter()
    }

    /// Consumes the trace, returning its messages.
    pub fn into_messages(self) -> Vec<Message> {
        self.messages
    }

    /// Groups messages into flows by their direction-independent
    /// endpoint pair ([`Message::flow_key`]).
    ///
    /// Returns one `Vec<usize>` of message indices per flow. Flows are
    /// ordered by flow key; within a flow, messages are ordered by
    /// `(timestamp_micros, capture index)` — a stable sort, so the
    /// grouping is a pure function of the message set and identical
    /// regardless of capture interleaving. This is the canonical flow
    /// extraction every consumer (state-machine inference, FieldHunter
    /// style baselines) should share instead of re-deriving ordering
    /// ad hoc.
    pub fn flows(&self) -> Vec<Vec<usize>> {
        let mut keyed: Vec<((Endpoint, Endpoint), u64, usize)> = self
            .messages
            .iter()
            .enumerate()
            .map(|(i, m)| (m.flow_key(), m.timestamp_micros(), i))
            .collect();
        keyed.sort();
        let mut flows: Vec<Vec<usize>> = Vec::new();
        let mut current_key = None;
        for (key, _, i) in keyed {
            if current_key != Some(key) {
                current_key = Some(key);
                flows.push(Vec::new());
            }
            flows.last_mut().expect("pushed above").push(i);
        }
        flows
    }
}

impl IntoIterator for Trace {
    type Item = Message;
    type IntoIter = std::vec::IntoIter<Message>;

    fn into_iter(self) -> Self::IntoIter {
        self.messages.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Message;
    type IntoIter = std::slice::Iter<'a, Message>;

    fn into_iter(self) -> Self::IntoIter {
        self.messages.iter()
    }
}

impl Extend<Message> for Trace {
    fn extend<T: IntoIterator<Item = Message>>(&mut self, iter: T) {
        self.messages.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(payload: &'static [u8]) -> Message {
        Message::builder(Bytes::from_static(payload)).build()
    }

    #[test]
    fn total_bytes_sums_payloads() {
        let t = Trace::new("t", vec![msg(b"abc"), msg(b"defgh")]);
        assert_eq!(t.total_payload_bytes(), 8);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("e", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.total_payload_bytes(), 0);
    }

    #[test]
    fn extend_appends() {
        let mut t = Trace::new("t", vec![msg(b"a")]);
        t.extend(vec![msg(b"b")]);
        assert_eq!(t.len(), 2);
    }

    fn flow_msg(src: Endpoint, dst: Endpoint, ts: u64) -> Message {
        Message::builder(Bytes::from_static(b"p"))
            .timestamp_micros(ts)
            .source(src)
            .destination(dst)
            .build()
    }

    #[test]
    fn flows_group_by_endpoint_pair_and_sort_by_time() {
        let a = Endpoint::udp([10, 0, 0, 1], 1000);
        let b = Endpoint::udp([10, 0, 0, 2], 53);
        let c = Endpoint::udp([10, 0, 0, 3], 2000);
        // Two interleaved flows, with one out-of-order timestamp and
        // both directions present in each flow.
        let t = Trace::new(
            "t",
            vec![
                flow_msg(a, b, 20), // 0: flow ab, second in time
                flow_msg(c, b, 5),  // 1: flow bc
                flow_msg(b, a, 10), // 2: flow ab (reverse dir), first in time
                flow_msg(b, c, 6),  // 3: flow bc
            ],
        );
        let flows = t.flows();
        assert_eq!(flows.len(), 2);
        assert!(flows.contains(&vec![2, 0]), "flow a<->b in time order");
        assert!(flows.contains(&vec![1, 3]), "flow b<->c in time order");
    }

    #[test]
    fn flows_are_stable_for_equal_timestamps() {
        let a = Endpoint::udp([1, 1, 1, 1], 1);
        let b = Endpoint::udp([2, 2, 2, 2], 2);
        let t = Trace::new(
            "t",
            vec![flow_msg(a, b, 7), flow_msg(a, b, 7), flow_msg(b, a, 7)],
        );
        // Equal timestamps fall back to capture order.
        assert_eq!(t.flows(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn flows_of_empty_trace_are_empty() {
        assert!(Trace::new("e", vec![]).flows().is_empty());
    }

    #[test]
    fn flow_order_is_capture_order_invariant() {
        let a = Endpoint::udp([10, 0, 0, 1], 1);
        let b = Endpoint::udp([10, 0, 0, 2], 2);
        let c = Endpoint::udp([10, 0, 0, 3], 3);
        let msgs = vec![
            flow_msg(a, b, 1),
            flow_msg(c, b, 2),
            flow_msg(a, b, 3),
            flow_msg(b, c, 4),
        ];
        let mut rev = msgs.clone();
        rev.reverse();
        let fwd = Trace::new("f", msgs);
        let bwd = Trace::new("b", rev);
        // Indices differ (the messages moved), but the flow *contents*
        // in flow order must be identical.
        let payload_flows = |t: &Trace| -> Vec<Vec<u64>> {
            t.flows()
                .into_iter()
                .map(|f| {
                    f.into_iter()
                        .map(|i| t.messages()[i].timestamp_micros())
                        .collect()
                })
                .collect()
        };
        assert_eq!(payload_flows(&fwd), payload_flows(&bwd));
    }
}
