//! The message model: payload bytes plus flow metadata.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A network address: IPv4 for encapsulated protocols, MAC for link-layer
/// protocols such as AWDL that carry no IP header (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Addr {
    /// An IPv4 address.
    Ipv4([u8; 4]),
    /// A 48-bit MAC address.
    Mac([u8; 6]),
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Ipv4(o) => write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3]),
            Addr::Mac(o) => write!(
                f,
                "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
                o[0], o[1], o[2], o[3], o[4], o[5]
            ),
        }
    }
}

/// One end of a flow: an address and, for UDP/TCP, a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Endpoint {
    /// Network address.
    pub addr: Addr,
    /// Transport port; `None` for link-layer protocols.
    pub port: Option<u16>,
}

impl Endpoint {
    /// An IPv4/UDP-or-TCP endpoint.
    pub fn udp(ip: [u8; 4], port: u16) -> Self {
        Self {
            addr: Addr::Ipv4(ip),
            port: Some(port),
        }
    }

    /// A link-layer endpoint identified by MAC address only.
    pub fn mac(mac: [u8; 6]) -> Self {
        Self {
            addr: Addr::Mac(mac),
            port: None,
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.port {
            Some(p) => write!(f, "{}:{}", self.addr, p),
            None => write!(f, "{}", self.addr),
        }
    }
}

/// Transport encapsulation of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Transport {
    /// UDP datagram payload.
    #[default]
    Udp,
    /// TCP segment payload (reassembly is out of scope; each segment's
    /// application bytes are one message, as in the paper's SMB trace).
    Tcp,
    /// Raw link-layer payload (AWDL action frames, AU).
    Link,
}

/// Message direction relative to the service, when known. FieldHunter's
/// message-type and transaction-id heuristics correlate requests with
/// responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Direction {
    /// Client-to-server.
    #[default]
    Request,
    /// Server-to-client.
    Response,
    /// Direction unknown (e.g. peer-to-peer link-layer traffic).
    Unknown,
}

/// A single captured message: payload plus flow metadata.
///
/// Construct with [`Message::builder`]. Payloads are reference-counted
/// [`Bytes`] so that segments can later borrow slices without copying.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    payload: Bytes,
    timestamp_micros: u64,
    source: Endpoint,
    destination: Endpoint,
    transport: Transport,
    direction: Direction,
}

impl Message {
    /// Starts building a message around a payload.
    pub fn builder(payload: Bytes) -> MessageBuilder {
        MessageBuilder {
            payload,
            timestamp_micros: 0,
            source: Endpoint::udp([0, 0, 0, 0], 0),
            destination: Endpoint::udp([0, 0, 0, 0], 0),
            transport: Transport::Udp,
            direction: Direction::Unknown,
        }
    }

    /// The application-layer payload.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Capture timestamp in microseconds since the epoch.
    pub fn timestamp_micros(&self) -> u64 {
        self.timestamp_micros
    }

    /// Sending endpoint.
    pub fn source(&self) -> Endpoint {
        self.source
    }

    /// Receiving endpoint.
    pub fn destination(&self) -> Endpoint {
        self.destination
    }

    /// Transport encapsulation.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Direction relative to the service, if known.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The unordered flow key (the pair of endpoints, normalized so that
    /// both directions of a conversation map to the same key).
    pub fn flow_key(&self) -> (Endpoint, Endpoint) {
        if self.source <= self.destination {
            (self.source, self.destination)
        } else {
            (self.destination, self.source)
        }
    }
}

/// Builder for [`Message`]; see [`Message::builder`].
#[derive(Debug, Clone)]
pub struct MessageBuilder {
    payload: Bytes,
    timestamp_micros: u64,
    source: Endpoint,
    destination: Endpoint,
    transport: Transport,
    direction: Direction,
}

impl MessageBuilder {
    /// Sets the capture timestamp in microseconds.
    pub fn timestamp_micros(mut self, ts: u64) -> Self {
        self.timestamp_micros = ts;
        self
    }

    /// Sets the sending endpoint.
    pub fn source(mut self, ep: Endpoint) -> Self {
        self.source = ep;
        self
    }

    /// Sets the receiving endpoint.
    pub fn destination(mut self, ep: Endpoint) -> Self {
        self.destination = ep;
        self
    }

    /// Sets the transport encapsulation.
    pub fn transport(mut self, t: Transport) -> Self {
        self.transport = t;
        self
    }

    /// Sets the direction.
    pub fn direction(mut self, d: Direction) -> Self {
        self.direction = d;
        self
    }

    /// Finalizes the message.
    pub fn build(self) -> Message {
        Message {
            payload: self.payload,
            timestamp_micros: self.timestamp_micros,
            source: self.source,
            destination: self.destination,
            transport: self.transport,
            direction: self.direction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let m = Message::builder(Bytes::from_static(b"xyz"))
            .timestamp_micros(7)
            .source(Endpoint::udp([1, 2, 3, 4], 53))
            .destination(Endpoint::udp([5, 6, 7, 8], 1234))
            .transport(Transport::Tcp)
            .direction(Direction::Response)
            .build();
        assert_eq!(&m.payload()[..], b"xyz");
        assert_eq!(m.timestamp_micros(), 7);
        assert_eq!(m.source().port, Some(53));
        assert_eq!(m.transport(), Transport::Tcp);
        assert_eq!(m.direction(), Direction::Response);
    }

    #[test]
    fn flow_key_is_direction_independent() {
        let a = Endpoint::udp([1, 1, 1, 1], 100);
        let b = Endpoint::udp([2, 2, 2, 2], 200);
        let m1 = Message::builder(Bytes::new())
            .source(a)
            .destination(b)
            .build();
        let m2 = Message::builder(Bytes::new())
            .source(b)
            .destination(a)
            .build();
        assert_eq!(m1.flow_key(), m2.flow_key());
    }

    #[test]
    fn addr_display() {
        assert_eq!(Addr::Ipv4([192, 168, 0, 1]).to_string(), "192.168.0.1");
        assert_eq!(
            Addr::Mac([0xaa, 0xbb, 0xcc, 0, 1, 2]).to_string(),
            "aa:bb:cc:00:01:02"
        );
        assert_eq!(Endpoint::udp([1, 2, 3, 4], 80).to_string(), "1.2.3.4:80");
        assert_eq!(
            Endpoint::mac([0, 0, 0, 0, 0, 1]).to_string(),
            "00:00:00:00:00:01"
        );
    }
}
