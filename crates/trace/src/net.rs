//! Ethernet II / IPv4 / UDP / TCP frame encoding and decoding.
//!
//! The pcap writer wraps each [`Message`] payload in a
//! minimal but well-formed frame; the reader reverses the process. This is
//! not a TCP/IP stack: TCP segments are written with fixed sequence
//! numbers and no reassembly is performed — each segment's application
//! bytes become one message, matching how the paper's SMB trace treats
//! messages. Link-layer protocols (AWDL, AU) are framed with a private
//! EtherType so they survive the round-trip without an IP header.

use crate::message::{Addr, Endpoint, Message, Transport};
use crate::TraceError;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Private EtherType used to frame link-layer (AWDL/AU) payloads.
pub const ETHERTYPE_LINK: u16 = 0x88B5;

const ETH_HEADER_LEN: usize = 14;
const IPV4_HEADER_LEN: usize = 20;
const UDP_HEADER_LEN: usize = 8;
const TCP_HEADER_LEN: usize = 20;

/// A decoded frame: endpoints, transport and the payload byte range within
/// the frame buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Sender.
    pub source: Endpoint,
    /// Receiver.
    pub destination: Endpoint,
    /// Transport encapsulation that was found.
    pub transport: Transport,
    /// Byte offset of the application payload within the frame.
    pub payload_offset: usize,
    /// Length of the application payload.
    pub payload_len: usize,
}

fn mac_for(addr: Addr) -> [u8; 6] {
    match addr {
        Addr::Mac(m) => m,
        // Locally administered MAC derived from the IPv4 address.
        Addr::Ipv4(ip) => [0x02, 0x00, ip[0], ip[1], ip[2], ip[3]],
    }
}

fn ipv4_of(ep: Endpoint) -> [u8; 4] {
    match ep.addr {
        Addr::Ipv4(ip) => ip,
        // Should not happen for UDP/TCP messages; degrade gracefully.
        Addr::Mac(m) => [m[2], m[3], m[4], m[5]],
    }
}

/// Encodes a message into a complete Ethernet frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = msg.payload();
    let mut frame =
        Vec::with_capacity(ETH_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN + payload.len());
    frame.extend_from_slice(&mac_for(msg.destination().addr));
    frame.extend_from_slice(&mac_for(msg.source().addr));

    match msg.transport() {
        Transport::Link => {
            frame.extend_from_slice(&ETHERTYPE_LINK.to_be_bytes());
            frame.extend_from_slice(payload);
        }
        Transport::Udp => {
            frame.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
            let udp_len = UDP_HEADER_LEN + payload.len();
            push_ipv4(&mut frame, msg, 17, udp_len);
            frame.extend_from_slice(&msg.source().port.unwrap_or(0).to_be_bytes());
            frame.extend_from_slice(&msg.destination().port.unwrap_or(0).to_be_bytes());
            frame.extend_from_slice(&(udp_len as u16).to_be_bytes());
            frame.extend_from_slice(&[0, 0]); // checksum 0 = unused (IPv4)
            frame.extend_from_slice(payload);
        }
        Transport::Tcp => {
            frame.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
            push_ipv4(&mut frame, msg, 6, TCP_HEADER_LEN + payload.len());
            frame.extend_from_slice(&msg.source().port.unwrap_or(0).to_be_bytes());
            frame.extend_from_slice(&msg.destination().port.unwrap_or(0).to_be_bytes());
            frame.extend_from_slice(&[0, 0, 0, 0]); // seq
            frame.extend_from_slice(&[0, 0, 0, 0]); // ack
            frame.push(0x50); // data offset 5 words
            frame.push(0x18); // PSH|ACK
            frame.extend_from_slice(&0xFFFFu16.to_be_bytes()); // window
            frame.extend_from_slice(&[0, 0]); // checksum (not computed)
            frame.extend_from_slice(&[0, 0]); // urgent pointer
            frame.extend_from_slice(payload);
        }
    }
    frame
}

fn push_ipv4(frame: &mut Vec<u8>, msg: &Message, proto: u8, l4_len: usize) {
    let total_len = (IPV4_HEADER_LEN + l4_len) as u16;
    let header_start = frame.len();
    frame.push(0x45); // version 4, IHL 5
    frame.push(0); // DSCP/ECN
    frame.extend_from_slice(&total_len.to_be_bytes());
    frame.extend_from_slice(&[0, 0]); // identification
    frame.extend_from_slice(&[0x40, 0]); // DF, no fragment offset
    frame.push(64); // TTL
    frame.push(proto);
    frame.extend_from_slice(&[0, 0]); // checksum placeholder
    frame.extend_from_slice(&ipv4_of(msg.source()));
    frame.extend_from_slice(&ipv4_of(msg.destination()));
    let csum = ipv4_checksum(&frame[header_start..header_start + IPV4_HEADER_LEN]);
    frame[header_start + 10..header_start + 12].copy_from_slice(&csum.to_be_bytes());
}

/// RFC 1071 Internet checksum over an IPv4 header.
pub fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    for chunk in header.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += u32::from(word);
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Decodes an Ethernet frame produced by [`encode_frame`] (or any
/// Ethernet II / IPv4 / UDP-or-TCP frame).
///
/// # Errors
///
/// Returns [`TraceError::Truncated`] when the frame is shorter than its
/// headers claim, [`TraceError::UnsupportedEncapsulation`] for EtherTypes
/// or IP protocols other than the supported set, and
/// [`TraceError::InvalidHeader`] for inconsistent length fields or a bad
/// IPv4 header checksum.
pub fn decode_frame(frame: &[u8]) -> Result<DecodedFrame, TraceError> {
    if frame.len() < ETH_HEADER_LEN {
        return Err(TraceError::Truncated {
            context: "ethernet header",
        });
    }
    let dst_mac: [u8; 6] = frame[0..6].try_into().expect("slice length 6");
    let src_mac: [u8; 6] = frame[6..12].try_into().expect("slice length 6");
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);

    match ethertype {
        ETHERTYPE_LINK => Ok(DecodedFrame {
            source: Endpoint::mac(src_mac),
            destination: Endpoint::mac(dst_mac),
            transport: Transport::Link,
            payload_offset: ETH_HEADER_LEN,
            payload_len: frame.len() - ETH_HEADER_LEN,
        }),
        ETHERTYPE_IPV4 => {
            let ip = &frame[ETH_HEADER_LEN..];
            if ip.len() < IPV4_HEADER_LEN {
                return Err(TraceError::Truncated {
                    context: "ipv4 header",
                });
            }
            if ip[0] >> 4 != 4 {
                return Err(TraceError::InvalidHeader {
                    context: "ipv4 version",
                });
            }
            let ihl = usize::from(ip[0] & 0x0F) * 4;
            if ihl < IPV4_HEADER_LEN || ip.len() < ihl {
                return Err(TraceError::InvalidHeader {
                    context: "ipv4 IHL",
                });
            }
            if ipv4_checksum(&ip[..ihl]) != 0 {
                return Err(TraceError::InvalidHeader {
                    context: "ipv4 checksum",
                });
            }
            let total_len = usize::from(u16::from_be_bytes([ip[2], ip[3]]));
            if total_len < ihl || ip.len() < total_len {
                return Err(TraceError::Truncated {
                    context: "ipv4 total length",
                });
            }
            let proto = ip[9];
            let src_ip: [u8; 4] = ip[12..16].try_into().expect("slice length 4");
            let dst_ip: [u8; 4] = ip[16..20].try_into().expect("slice length 4");
            let l4 = &ip[ihl..total_len];
            match proto {
                17 => {
                    if l4.len() < UDP_HEADER_LEN {
                        return Err(TraceError::Truncated {
                            context: "udp header",
                        });
                    }
                    let sport = u16::from_be_bytes([l4[0], l4[1]]);
                    let dport = u16::from_be_bytes([l4[2], l4[3]]);
                    let udp_len = usize::from(u16::from_be_bytes([l4[4], l4[5]]));
                    if udp_len < UDP_HEADER_LEN || l4.len() < udp_len {
                        return Err(TraceError::InvalidHeader {
                            context: "udp length",
                        });
                    }
                    Ok(DecodedFrame {
                        source: Endpoint::udp(src_ip, sport),
                        destination: Endpoint::udp(dst_ip, dport),
                        transport: Transport::Udp,
                        payload_offset: ETH_HEADER_LEN + ihl + UDP_HEADER_LEN,
                        payload_len: udp_len - UDP_HEADER_LEN,
                    })
                }
                6 => {
                    if l4.len() < TCP_HEADER_LEN {
                        return Err(TraceError::Truncated {
                            context: "tcp header",
                        });
                    }
                    let sport = u16::from_be_bytes([l4[0], l4[1]]);
                    let dport = u16::from_be_bytes([l4[2], l4[3]]);
                    let data_offset = usize::from(l4[12] >> 4) * 4;
                    if data_offset < TCP_HEADER_LEN || l4.len() < data_offset {
                        return Err(TraceError::InvalidHeader {
                            context: "tcp data offset",
                        });
                    }
                    Ok(DecodedFrame {
                        source: Endpoint::udp(src_ip, sport),
                        destination: Endpoint::udp(dst_ip, dport),
                        transport: Transport::Tcp,
                        payload_offset: ETH_HEADER_LEN + ihl + data_offset,
                        payload_len: total_len - ihl - data_offset,
                    })
                }
                other => Err(TraceError::UnsupportedEncapsulation {
                    code: u16::from(other),
                }),
            }
        }
        other => Err(TraceError::UnsupportedEncapsulation { code: other }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn udp_msg(payload: &'static [u8]) -> Message {
        Message::builder(Bytes::from_static(payload))
            .source(Endpoint::udp([10, 0, 0, 1], 123))
            .destination(Endpoint::udp([10, 0, 0, 2], 123))
            .transport(Transport::Udp)
            .build()
    }

    #[test]
    fn udp_roundtrip() {
        let m = udp_msg(b"hello ntp");
        let frame = encode_frame(&m);
        let d = decode_frame(&frame).unwrap();
        assert_eq!(d.transport, Transport::Udp);
        assert_eq!(d.source, m.source());
        assert_eq!(d.destination, m.destination());
        assert_eq!(
            &frame[d.payload_offset..d.payload_offset + d.payload_len],
            b"hello ntp"
        );
    }

    #[test]
    fn tcp_roundtrip() {
        let m = Message::builder(Bytes::from_static(b"\xffSMB"))
            .source(Endpoint::udp([192, 168, 1, 5], 50000))
            .destination(Endpoint::udp([192, 168, 1, 1], 445))
            .transport(Transport::Tcp)
            .build();
        let frame = encode_frame(&m);
        let d = decode_frame(&frame).unwrap();
        assert_eq!(d.transport, Transport::Tcp);
        assert_eq!(d.source.port, Some(50000));
        assert_eq!(
            &frame[d.payload_offset..d.payload_offset + d.payload_len],
            b"\xffSMB"
        );
    }

    #[test]
    fn link_roundtrip_keeps_macs() {
        let m = Message::builder(Bytes::from_static(b"awdl-frame"))
            .source(Endpoint::mac([2, 0, 0, 0, 0, 1]))
            .destination(Endpoint::mac([2, 0, 0, 0, 0, 2]))
            .transport(Transport::Link)
            .build();
        let frame = encode_frame(&m);
        let d = decode_frame(&frame).unwrap();
        assert_eq!(d.transport, Transport::Link);
        assert_eq!(d.source, m.source());
        assert_eq!(d.destination, m.destination());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let m = udp_msg(b"");
        let frame = encode_frame(&m);
        let d = decode_frame(&frame).unwrap();
        assert_eq!(d.payload_len, 0);
    }

    #[test]
    fn checksum_is_valid_on_encoded_frames() {
        let m = udp_msg(b"payload");
        let frame = encode_frame(&m);
        // Folding the checksum over a correct header yields zero.
        assert_eq!(ipv4_checksum(&frame[14..34]), 0);
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let m = udp_msg(b"payload");
        let mut frame = encode_frame(&m);
        frame[20] ^= 0xFF;
        assert!(matches!(
            decode_frame(&frame),
            Err(TraceError::InvalidHeader {
                context: "ipv4 checksum"
            })
        ));
    }

    #[test]
    fn short_frame_is_truncated_error() {
        assert!(matches!(
            decode_frame(&[0u8; 5]),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_ethertype_is_unsupported() {
        let mut frame = vec![0u8; 20];
        frame[12] = 0x86; // IPv6
        frame[13] = 0xDD;
        assert!(matches!(
            decode_frame(&frame),
            Err(TraceError::UnsupportedEncapsulation { code: 0x86DD })
        ));
    }
}
