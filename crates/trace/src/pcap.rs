//! Classic libpcap file format reader and writer.
//!
//! Implements the venerable `pcap-savefile(5)` format (magic
//! `0xA1B2C3D4`, microsecond timestamps, link type Ethernet). Both byte
//! orders are read; files are written in the host-independent big-endian
//! convention of the magic as stored.

use crate::net::{decode_frame, encode_frame};
use crate::{Message, Trace, TraceError};
use bytes::Bytes;
use std::io::{Read, Write};

const MAGIC: u32 = 0xA1B2_C3D4;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;
const SNAPLEN: u32 = 65535;

/// Writes a trace to a pcap stream.
///
/// Each message is encapsulated per its [`Transport`](crate::Transport)
/// (UDP/TCP over IPv4 over Ethernet, or the private link-layer EtherType).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceError> {
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&VERSION_MAJOR.to_le_bytes())?;
    w.write_all(&VERSION_MINOR.to_le_bytes())?;
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&SNAPLEN.to_le_bytes())?;
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
    for msg in trace {
        let frame = encode_frame(msg);
        let ts = msg.timestamp_micros();
        w.write_all(&((ts / 1_000_000) as u32).to_le_bytes())?;
        w.write_all(&((ts % 1_000_000) as u32).to_le_bytes())?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(&frame)?;
    }
    Ok(())
}

/// Writes a trace into an in-memory pcap image.
///
/// # Errors
///
/// Never fails for in-memory writes in practice; the `Result` mirrors
/// [`write()`](crate::pcap::write).
pub fn write_to_vec(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let mut buf = Vec::new();
    write(trace, &mut buf)?;
    Ok(buf)
}

/// Writes a trace to a pcap file at `path`.
///
/// # Errors
///
/// Propagates I/O errors (file creation, writing).
pub fn write_to_file(trace: &Trace, path: impl AsRef<std::path::Path>) -> Result<(), TraceError> {
    let f = std::fs::File::create(path)?;
    write(trace, std::io::BufWriter::new(f))
}

/// Reads a pcap stream into a [`Trace`] named `name`.
///
/// Frames that use unsupported encapsulations are skipped (a capture may
/// contain unrelated traffic); malformed pcap structure is an error.
///
/// # Errors
///
/// Returns [`TraceError::BadMagic`] for unknown file magic and
/// [`TraceError::Truncated`] for incomplete records.
pub fn read<R: Read>(mut r: R, name: &str) -> Result<Trace, TraceError> {
    let mut header = [0u8; 24];
    r.read_exact(&mut header)
        .map_err(|_| TraceError::Truncated {
            context: "pcap global header",
        })?;
    let magic_le = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let magic_be = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    let little_endian = if magic_le == MAGIC {
        true
    } else if magic_be == MAGIC {
        false
    } else {
        return Err(TraceError::BadMagic(magic_le));
    };
    let read_u32 = |b: &[u8]| -> u32 {
        let arr: [u8; 4] = b.try_into().expect("4 bytes");
        if little_endian {
            u32::from_le_bytes(arr)
        } else {
            u32::from_be_bytes(arr)
        }
    };

    let mut messages = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let ts_sec = u64::from(read_u32(&rec[0..4]));
        let ts_usec = u64::from(read_u32(&rec[4..8]));
        let incl_len = read_u32(&rec[8..12]) as usize;
        // A capture record larger than 64 MiB is corrupt (snaplen is
        // 65535); refuse before allocating.
        if incl_len > 0x400_0000 {
            return Err(TraceError::InvalidHeader {
                context: "pcap record length",
            });
        }
        let mut frame = vec![0u8; incl_len];
        r.read_exact(&mut frame)
            .map_err(|_| TraceError::Truncated {
                context: "pcap record body",
            })?;

        match decode_frame(&frame) {
            Ok(d) => {
                let payload = Bytes::copy_from_slice(
                    &frame[d.payload_offset..d.payload_offset + d.payload_len],
                );
                messages.push(
                    Message::builder(payload)
                        .timestamp_micros(ts_sec * 1_000_000 + ts_usec)
                        .source(d.source)
                        .destination(d.destination)
                        .transport(d.transport)
                        .build(),
                );
            }
            // Tolerate foreign traffic in the capture.
            Err(TraceError::UnsupportedEncapsulation { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Trace::new(name, messages))
}

/// Reads a pcap image from a byte slice; see [`read`].
///
/// # Errors
///
/// Same as [`read`].
pub fn read_from_slice(bytes: &[u8], name: &str) -> Result<Trace, TraceError> {
    read(bytes, name)
}

/// Reads a pcap file from disk; see [`read`].
///
/// # Errors
///
/// Propagates I/O errors in addition to the parse errors of [`read`].
pub fn read_from_file(path: impl AsRef<std::path::Path>, name: &str) -> Result<Trace, TraceError> {
    let f = std::fs::File::open(path)?;
    read(std::io::BufReader::new(f), name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Endpoint, Transport};

    fn sample_trace() -> Trace {
        let mk = |payload: &'static [u8], ts: u64, transport: Transport| {
            Message::builder(Bytes::from_static(payload))
                .timestamp_micros(ts)
                .source(match transport {
                    Transport::Link => Endpoint::mac([2, 0, 0, 0, 0, 9]),
                    _ => Endpoint::udp([10, 1, 2, 3], 1234),
                })
                .destination(match transport {
                    Transport::Link => Endpoint::mac([2, 0, 0, 0, 0, 8]),
                    _ => Endpoint::udp([10, 9, 8, 7], 53),
                })
                .transport(transport)
                .build()
        };
        Trace::new(
            "mixed",
            vec![
                mk(b"udp payload", 1_111_111, Transport::Udp),
                mk(b"tcp payload bytes", 2_222_222, Transport::Tcp),
                mk(b"link payload", 3_999_999, Transport::Link),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_payloads_and_meta() {
        let t = sample_trace();
        let img = write_to_vec(&t).unwrap();
        let back = read_from_slice(&img, "mixed").unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.iter().zip(back.iter()) {
            assert_eq!(a.payload(), b.payload());
            assert_eq!(a.timestamp_micros(), b.timestamp_micros());
            assert_eq!(a.source(), b.source());
            assert_eq!(a.destination(), b.destination());
            assert_eq!(a.transport(), b.transport());
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("fieldclust-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pcap");
        write_to_file(&t, &path).unwrap();
        let back = read_from_file(&path, "mixed").unwrap();
        assert_eq!(back.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let img = vec![0u8; 24];
        assert!(matches!(
            read_from_slice(&img, "x"),
            Err(TraceError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_truncated_record() {
        let t = sample_trace();
        let mut img = write_to_vec(&t).unwrap();
        img.truncate(img.len() - 3);
        assert!(matches!(
            read_from_slice(&img, "x"),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_capture_reads_empty_trace() {
        let t = Trace::new("none", vec![]);
        let img = write_to_vec(&t).unwrap();
        let back = read_from_slice(&img, "none").unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn reads_big_endian_header() {
        // Hand-build a big-endian global header with no records.
        let mut img = Vec::new();
        img.extend_from_slice(&MAGIC.to_be_bytes());
        img.extend_from_slice(&VERSION_MAJOR.to_be_bytes());
        img.extend_from_slice(&VERSION_MINOR.to_be_bytes());
        img.extend_from_slice(&[0u8; 16]);
        let back = read_from_slice(&img, "be").unwrap();
        assert!(back.is_empty());
    }
}
