//! pcapng (pcap Next Generation) reader and writer.
//!
//! Modern capture tools default to pcapng rather than the classic format
//! in [`crate::pcap`]. This implementation covers the blocks needed to
//! exchange traces: Section Header (SHB), Interface Description (IDB),
//! Enhanced Packet (EPB) and Simple Packet (SPB) blocks, in both byte
//! orders, with microsecond timestamps (the default `if_tsresol`).
//! Unknown block types are skipped, as the specification requires.
//! [`read_any`] sniffs the magic and dispatches to the right parser, so
//! callers need not know which flavor a file is.

use crate::net::{decode_frame, encode_frame};
use crate::{Message, Trace, TraceError};
use bytes::Bytes;
use std::io::Read;

const SHB_TYPE: u32 = 0x0A0D_0D0A;
const IDB_TYPE: u32 = 0x0000_0001;
const SPB_TYPE: u32 = 0x0000_0003;
const EPB_TYPE: u32 = 0x0000_0006;
const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;
const LINKTYPE_ETHERNET: u16 = 1;

/// Reads a pcapng stream into a [`Trace`] named `name`.
///
/// Frames with unsupported encapsulations are skipped like in
/// [`crate::pcap::read`]; unknown blocks are ignored.
///
/// # Errors
///
/// Returns [`TraceError::BadMagic`] when the stream does not start with
/// a Section Header Block and [`TraceError::Truncated`] for incomplete
/// blocks.
pub fn read<R: Read>(mut r: R, name: &str) -> Result<Trace, TraceError> {
    let mut data = Vec::new();
    r.read_exact(&mut []).ok();
    r.read_to_end(&mut data)?;
    read_from_slice(&data, name)
}

/// Reads a pcapng image from a byte slice; see [`read`].
///
/// # Errors
///
/// Same as [`read`].
pub fn read_from_slice(data: &[u8], name: &str) -> Result<Trace, TraceError> {
    let mut pos = 0usize;
    let mut little_endian = true;
    let mut saw_shb = false;
    let mut messages = Vec::new();

    let need = |pos: usize, n: usize, len: usize| -> Result<(), TraceError> {
        if pos + n > len {
            Err(TraceError::Truncated {
                context: "pcapng block",
            })
        } else {
            Ok(())
        }
    };

    while pos + 8 <= data.len() {
        // Block type is endian-sensitive except for the SHB, whose type
        // is a palindrome.
        let raw_type_le = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
        let is_shb = raw_type_le == SHB_TYPE;
        if is_shb {
            // Determine endianness from the byte-order magic.
            need(pos, 12, data.len())?;
            let bom_le = u32::from_le_bytes(data[pos + 8..pos + 12].try_into().expect("4 bytes"));
            let bom_be = u32::from_be_bytes(data[pos + 8..pos + 12].try_into().expect("4 bytes"));
            little_endian = if bom_le == BYTE_ORDER_MAGIC {
                true
            } else if bom_be == BYTE_ORDER_MAGIC {
                false
            } else {
                return Err(TraceError::BadMagic(bom_le));
            };
            saw_shb = true;
        } else if !saw_shb {
            return Err(TraceError::BadMagic(raw_type_le));
        }
        let rd32 = |at: usize| -> u32 {
            let arr: [u8; 4] = data[at..at + 4].try_into().expect("4 bytes");
            if little_endian {
                u32::from_le_bytes(arr)
            } else {
                u32::from_be_bytes(arr)
            }
        };
        let block_type = rd32(pos);
        let block_len = rd32(pos + 4) as usize;
        if block_len < 12 || !block_len.is_multiple_of(4) {
            return Err(TraceError::InvalidHeader {
                context: "pcapng block length",
            });
        }
        need(pos, block_len, data.len())?;
        let body = &data[pos + 8..pos + block_len - 4];

        match block_type {
            EPB_TYPE => {
                if body.len() < 20 {
                    return Err(TraceError::Truncated {
                        context: "enhanced packet block",
                    });
                }
                let ts_high = rd32(pos + 8 + 4) as u64;
                let ts_low = rd32(pos + 8 + 8) as u64;
                let captured = rd32(pos + 8 + 12) as usize;
                if 20 + captured > body.len() {
                    return Err(TraceError::Truncated {
                        context: "enhanced packet data",
                    });
                }
                let frame = &body[20..20 + captured];
                // Default if_tsresol: microseconds.
                let ts = ts_high << 32 | ts_low;
                push_frame(&mut messages, frame, ts)?;
            }
            SPB_TYPE => {
                if body.len() < 4 {
                    return Err(TraceError::Truncated {
                        context: "simple packet block",
                    });
                }
                let frame = &body[4..];
                push_frame(&mut messages, frame, 0)?;
            }
            // SHB, IDB, statistics, name resolution, …: nothing to
            // extract (IDB options like if_tsresol beyond the default
            // are not produced by our writer).
            _ => {}
        }
        pos += block_len;
    }
    if !saw_shb {
        return Err(TraceError::Truncated {
            context: "pcapng section header",
        });
    }
    Ok(Trace::new(name, messages))
}

fn push_frame(messages: &mut Vec<Message>, frame: &[u8], ts: u64) -> Result<(), TraceError> {
    match decode_frame(frame) {
        Ok(d) => {
            let payload =
                Bytes::copy_from_slice(&frame[d.payload_offset..d.payload_offset + d.payload_len]);
            messages.push(
                Message::builder(payload)
                    .timestamp_micros(ts)
                    .source(d.source)
                    .destination(d.destination)
                    .transport(d.transport)
                    .build(),
            );
            Ok(())
        }
        Err(TraceError::UnsupportedEncapsulation { .. }) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Writes a trace as a minimal little-endian pcapng image (one SHB, one
/// Ethernet IDB, one EPB per message).
///
/// # Errors
///
/// Never fails for in-memory writes; the `Result` mirrors the pcap
/// writer's signature.
pub fn write_to_vec(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let mut out = Vec::new();
    // SHB: type, len, byte-order magic, version 1.0, section length -1.
    let shb_body: Vec<u8> = [
        BYTE_ORDER_MAGIC.to_le_bytes().as_slice(),
        &1u16.to_le_bytes(),
        &0u16.to_le_bytes(),
        &(-1i64).to_le_bytes(),
    ]
    .concat();
    push_block(&mut out, SHB_TYPE, &shb_body);
    // IDB: linktype, reserved, snaplen.
    let idb_body: Vec<u8> = [
        LINKTYPE_ETHERNET.to_le_bytes().as_slice(),
        &0u16.to_le_bytes(),
        &65535u32.to_le_bytes(),
    ]
    .concat();
    push_block(&mut out, IDB_TYPE, &idb_body);
    for msg in trace {
        let frame = encode_frame(msg);
        let ts = msg.timestamp_micros();
        let mut body = Vec::with_capacity(20 + frame.len());
        body.extend_from_slice(&0u32.to_le_bytes()); // interface id
        body.extend_from_slice(&((ts >> 32) as u32).to_le_bytes());
        body.extend_from_slice(&(ts as u32).to_le_bytes());
        body.extend_from_slice(&(frame.len() as u32).to_le_bytes()); // captured
        body.extend_from_slice(&(frame.len() as u32).to_le_bytes()); // original
        body.extend_from_slice(&frame);
        push_block(&mut out, EPB_TYPE, &body);
    }
    Ok(out)
}

fn push_block(out: &mut Vec<u8>, block_type: u32, body: &[u8]) {
    let padded = body.len().div_ceil(4) * 4;
    let total = 12 + padded;
    out.extend_from_slice(&block_type.to_le_bytes());
    out.extend_from_slice(&(total as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend(std::iter::repeat_n(0u8, padded - body.len()));
    out.extend_from_slice(&(total as u32).to_le_bytes());
}

/// Reads either a classic pcap or a pcapng image, sniffing the magic.
///
/// # Errors
///
/// Returns [`TraceError::BadMagic`] when neither format matches, or the
/// respective parser's errors.
pub fn read_any(data: &[u8], name: &str) -> Result<Trace, TraceError> {
    if data.len() >= 4 {
        let magic = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes"));
        if magic == SHB_TYPE {
            return read_from_slice(data, name);
        }
    }
    crate::pcap::read_from_slice(data, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Endpoint, Transport};

    fn sample_trace() -> Trace {
        let mk = |payload: &'static [u8], ts: u64| {
            Message::builder(Bytes::from_static(payload))
                .timestamp_micros(ts)
                .source(Endpoint::udp([10, 1, 2, 3], 1234))
                .destination(Endpoint::udp([10, 9, 8, 7], 53))
                .transport(Transport::Udp)
                .build()
        };
        Trace::new(
            "ng",
            vec![
                mk(b"first", 1_000_001),
                mk(b"second payload", 77_000_000_123),
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let t = sample_trace();
        let img = write_to_vec(&t).unwrap();
        let back = read_from_slice(&img, "ng").unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in t.iter().zip(back.iter()) {
            assert_eq!(a.payload(), b.payload());
            assert_eq!(a.timestamp_micros(), b.timestamp_micros());
            assert_eq!(a.source(), b.source());
        }
    }

    #[test]
    fn read_any_dispatches_both_formats() {
        let t = sample_trace();
        let ng = write_to_vec(&t).unwrap();
        let classic = crate::pcap::write_to_vec(&t).unwrap();
        assert_eq!(read_any(&ng, "x").unwrap().len(), 2);
        assert_eq!(read_any(&classic, "x").unwrap().len(), 2);
        assert!(matches!(
            read_any(&[0u8; 32], "x"),
            Err(TraceError::BadMagic(_))
        ));
    }

    #[test]
    fn unknown_blocks_are_skipped() {
        let t = sample_trace();
        let mut img = write_to_vec(&t).unwrap();
        // Append a custom block (type 0x0BAD) — must be ignored.
        push_block(&mut img, 0x0BAD, &[1, 2, 3, 4, 5]);
        let back = read_from_slice(&img, "ng").unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn big_endian_sections_parse() {
        // Hand-build a big-endian SHB followed by nothing.
        let mut img = Vec::new();
        img.extend_from_slice(&SHB_TYPE.to_be_bytes());
        img.extend_from_slice(&28u32.to_be_bytes());
        img.extend_from_slice(&BYTE_ORDER_MAGIC.to_be_bytes());
        img.extend_from_slice(&1u16.to_be_bytes());
        img.extend_from_slice(&0u16.to_be_bytes());
        img.extend_from_slice(&(-1i64).to_be_bytes());
        img.extend_from_slice(&28u32.to_be_bytes());
        let t = read_from_slice(&img, "be").unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(
            read_from_slice(&[0xFFu8; 64], "x"),
            Err(TraceError::BadMagic(_))
        ));
        let t = sample_trace();
        let mut img = write_to_vec(&t).unwrap();
        img.truncate(img.len() - 5);
        assert!(matches!(
            read_from_slice(&img, "x"),
            Err(TraceError::Truncated { .. })
        ));
        assert!(matches!(
            read_from_slice(&[], "x"),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn padding_respects_alignment() {
        // Odd-length payload forces EPB padding; roundtrip must still work.
        let t = Trace::new(
            "pad",
            vec![Message::builder(Bytes::from_static(b"xyz"))
                .source(Endpoint::udp([1, 1, 1, 1], 1))
                .destination(Endpoint::udp([2, 2, 2, 2], 2))
                .build()],
        );
        let img = write_to_vec(&t).unwrap();
        assert_eq!(img.len() % 4, 0);
        let back = read_from_slice(&img, "pad").unwrap();
        assert_eq!(&back.messages()[0].payload()[..], b"xyz");
    }
}
