//! Trace preprocessing (paper §III-A).
//!
//! Before any inference, raw captures are filtered to the protocol of
//! interest, payloads are de-duplicated (identical payloads carry no
//! additional information for a variance-based method), and traces are
//! truncated to a fixed size so results are comparable across protocols
//! (the paper uses 100 and 1000 messages).

use crate::{Message, Trace, Transport};
use std::collections::HashSet;

/// Configurable preprocessing pipeline.
///
/// # Examples
///
/// ```
/// use trace::{Preprocessor, Trace, Message, Endpoint};
/// use bytes::Bytes;
///
/// let mk = |p: &'static [u8], port: u16| {
///     Message::builder(Bytes::from_static(p))
///         .destination(Endpoint::udp([10, 0, 0, 1], port))
///         .build()
/// };
/// let raw = Trace::new("capture", vec![
///     mk(b"ntp1", 123), mk(b"dns", 53), mk(b"ntp1", 123), mk(b"ntp2", 123),
/// ]);
/// let clean = Preprocessor::new()
///     .filter_port(123)
///     .deduplicate(true)
///     .truncate(100)
///     .apply(&raw);
/// assert_eq!(clean.len(), 2); // dns dropped, duplicate ntp1 dropped
/// ```
#[derive(Debug, Clone, Default)]
pub struct Preprocessor {
    port: Option<u16>,
    transport: Option<Transport>,
    dedup: bool,
    max_messages: Option<usize>,
    min_payload_len: usize,
}

impl Preprocessor {
    /// Creates a preprocessor that passes everything through unchanged.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keeps only messages whose source or destination port matches.
    pub fn filter_port(mut self, port: u16) -> Self {
        self.port = Some(port);
        self
    }

    /// Keeps only messages of the given transport.
    pub fn filter_transport(mut self, transport: Transport) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Drops messages whose payload was already seen (paper §III-A:
    /// "duplicates carry no additional information").
    pub fn deduplicate(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Keeps at most the first `n` messages after all other filters.
    pub fn truncate(mut self, n: usize) -> Self {
        self.max_messages = Some(n);
        self
    }

    /// Drops messages with payloads shorter than `n` bytes (empty TCP
    /// acknowledgements and the like).
    pub fn min_payload_len(mut self, n: usize) -> Self {
        self.min_payload_len = n;
        self
    }

    /// Applies the configured steps, returning a new trace.
    pub fn apply(&self, trace: &Trace) -> Trace {
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        let mut kept: Vec<Message> = Vec::new();
        for msg in trace {
            if self.max_messages.is_some_and(|max| kept.len() >= max) {
                break;
            }
            if msg.payload().len() < self.min_payload_len {
                continue;
            }
            if let Some(p) = self.port {
                let src_ok = msg.source().port == Some(p);
                let dst_ok = msg.destination().port == Some(p);
                if !src_ok && !dst_ok {
                    continue;
                }
            }
            if let Some(t) = self.transport {
                if msg.transport() != t {
                    continue;
                }
            }
            if self.dedup && !seen.insert(msg.payload().to_vec()) {
                continue;
            }
            kept.push(msg.clone());
            if let Some(max) = self.max_messages {
                if kept.len() >= max {
                    break;
                }
            }
        }
        Trace::new(trace.name(), kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endpoint;
    use bytes::Bytes;

    fn msg(payload: &[u8], sport: u16, dport: u16, transport: Transport) -> Message {
        Message::builder(Bytes::copy_from_slice(payload))
            .source(Endpoint::udp([1, 1, 1, 1], sport))
            .destination(Endpoint::udp([2, 2, 2, 2], dport))
            .transport(transport)
            .build()
    }

    #[test]
    fn identity_when_unconfigured() {
        let t = Trace::new(
            "t",
            vec![
                msg(b"a", 1, 2, Transport::Udp),
                msg(b"a", 1, 2, Transport::Udp),
            ],
        );
        let out = Preprocessor::new().apply(&t);
        assert_eq!(out.len(), 2);
        assert_eq!(out.name(), "t");
    }

    #[test]
    fn port_filter_matches_either_side() {
        let t = Trace::new(
            "t",
            vec![
                msg(b"a", 123, 5000, Transport::Udp),
                msg(b"b", 5000, 123, Transport::Udp),
                msg(b"c", 5000, 5001, Transport::Udp),
            ],
        );
        let out = Preprocessor::new().filter_port(123).apply(&t);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn dedup_keeps_first_occurrence() {
        let t = Trace::new(
            "t",
            vec![
                msg(b"x", 1, 2, Transport::Udp),
                msg(b"y", 1, 2, Transport::Udp),
                msg(b"x", 3, 4, Transport::Udp),
            ],
        );
        let out = Preprocessor::new().deduplicate(true).apply(&t);
        assert_eq!(out.len(), 2);
        assert_eq!(&out.messages()[0].payload()[..], b"x");
        assert_eq!(out.messages()[0].source().port, Some(1));
    }

    #[test]
    fn truncate_limits_count() {
        let msgs: Vec<Message> = (0..10u8).map(|i| msg(&[i], 1, 2, Transport::Udp)).collect();
        let t = Trace::new("t", msgs);
        let out = Preprocessor::new().truncate(3).apply(&t);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn transport_and_min_len_filters() {
        let t = Trace::new(
            "t",
            vec![
                msg(b"", 1, 2, Transport::Tcp),
                msg(b"abcd", 1, 2, Transport::Tcp),
                msg(b"efgh", 1, 2, Transport::Udp),
            ],
        );
        let out = Preprocessor::new()
            .filter_transport(Transport::Tcp)
            .min_payload_len(1)
            .apply(&t);
        assert_eq!(out.len(), 1);
        assert_eq!(&out.messages()[0].payload()[..], b"abcd");
    }
}
