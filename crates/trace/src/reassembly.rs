//! TCP stream reassembly and message framing.
//!
//! The paper's SMB trace consists of application messages, but a raw
//! capture delivers TCP *segments*, which may split one SMB message
//! across several packets or coalesce several into one. This module
//! rebuilds application messages: segments are grouped per directed
//! flow, concatenated in capture order, and cut back into messages by a
//! protocol [`Framer`] (for SMB: the NetBIOS session service length
//! header). Non-TCP messages pass through untouched.

use crate::{Message, Trace, Transport};
use bytes::Bytes;
use std::collections::HashMap;

/// Decides where application messages end within a reassembled stream.
pub trait Framer {
    /// Inspects the beginning of `buf` and reports whether a complete
    /// frame is present.
    fn frame_len(&self, buf: &[u8]) -> FrameStatus;
}

/// Result of a framing probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStatus {
    /// The buffer does not yet hold a complete header/frame.
    NeedMore,
    /// A complete frame of this many bytes starts at offset 0.
    Complete(usize),
    /// The buffer cannot be a valid frame (resynchronization needed).
    Invalid,
}

/// Framer for the NetBIOS session service (SMB over TCP 445/139):
/// 1 type byte + 24-bit big-endian length.
#[derive(Debug, Clone, Copy, Default)]
pub struct NbssFramer;

impl Framer for NbssFramer {
    fn frame_len(&self, buf: &[u8]) -> FrameStatus {
        if buf.len() < 4 {
            return FrameStatus::NeedMore;
        }
        // Session message (0x00) or keep-alive (0x85).
        if buf[0] != 0x00 && buf[0] != 0x85 {
            return FrameStatus::Invalid;
        }
        let len = usize::from(buf[1]) << 16 | usize::from(buf[2]) << 8 | usize::from(buf[3]);
        let total = 4 + len;
        if buf.len() < total {
            FrameStatus::NeedMore
        } else {
            FrameStatus::Complete(total)
        }
    }
}

/// Framer for protocols whose messages arrive one-per-segment already
/// (no reassembly): every non-empty buffer is one frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityFramer;

impl Framer for IdentityFramer {
    fn frame_len(&self, buf: &[u8]) -> FrameStatus {
        if buf.is_empty() {
            FrameStatus::NeedMore
        } else {
            FrameStatus::Complete(buf.len())
        }
    }
}

/// Statistics of a reassembly run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReassemblyStats {
    /// TCP segments consumed.
    pub segments_in: usize,
    /// Application messages produced from TCP streams.
    pub messages_out: usize,
    /// Bytes discarded during resynchronization after an invalid frame.
    pub resync_bytes: u64,
    /// Bytes left over in unterminated streams at end of capture.
    pub trailing_bytes: u64,
}

/// Reassembles the TCP messages of a trace into application messages.
///
/// Segments are grouped by directed flow (source, destination) and
/// processed in capture order; each completed frame becomes a message
/// stamped with the time of the segment that completed it. After an
/// invalid frame the stream resynchronizes by skipping one byte at a
/// time (counted in [`ReassemblyStats::resync_bytes`]). Non-TCP
/// messages are passed through unchanged; the output is sorted by
/// timestamp.
pub fn reassemble(trace: &Trace, framer: &dyn Framer) -> (Trace, ReassemblyStats) {
    let mut stats = ReassemblyStats::default();
    let mut out: Vec<Message> = Vec::with_capacity(trace.len());
    // Directed flow -> (buffer, template message for metadata).
    let mut streams: HashMap<(crate::Endpoint, crate::Endpoint), (Vec<u8>, Message)> =
        HashMap::new();

    for msg in trace {
        if msg.transport() != Transport::Tcp {
            out.push(msg.clone());
            continue;
        }
        stats.segments_in += 1;
        let key = (msg.source(), msg.destination());
        let entry = streams
            .entry(key)
            .or_insert_with(|| (Vec::new(), msg.clone()));
        entry.0.extend_from_slice(msg.payload());
        // Drain all complete frames.
        loop {
            match framer.frame_len(&entry.0) {
                FrameStatus::NeedMore => break,
                FrameStatus::Complete(len) => {
                    let frame: Vec<u8> = entry.0.drain(..len).collect();
                    out.push(
                        Message::builder(Bytes::from(frame))
                            .timestamp_micros(msg.timestamp_micros())
                            .source(msg.source())
                            .destination(msg.destination())
                            .transport(Transport::Tcp)
                            .direction(msg.direction())
                            .build(),
                    );
                    stats.messages_out += 1;
                }
                FrameStatus::Invalid => {
                    entry.0.remove(0);
                    stats.resync_bytes += 1;
                }
            }
        }
    }
    for (_, (buf, _)) in streams {
        stats.trailing_bytes += buf.len() as u64;
    }
    out.sort_by_key(Message::timestamp_micros);
    (Trace::new(trace.name(), out), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endpoint;

    fn tcp_msg(payload: Vec<u8>, ts: u64, sport: u16) -> Message {
        Message::builder(Bytes::from(payload))
            .timestamp_micros(ts)
            .source(Endpoint::udp([10, 0, 0, 1], sport))
            .destination(Endpoint::udp([10, 0, 0, 2], 445))
            .transport(Transport::Tcp)
            .build()
    }

    fn nbss_frame(body: &[u8]) -> Vec<u8> {
        let mut f = vec![0u8];
        f.extend_from_slice(&(body.len() as u32).to_be_bytes()[1..]);
        f.extend_from_slice(body);
        f
    }

    #[test]
    fn split_message_is_reassembled() {
        let frame = nbss_frame(b"hello smb world");
        let (a, b) = frame.split_at(7);
        let t = Trace::new(
            "t",
            vec![tcp_msg(a.to_vec(), 1, 1000), tcp_msg(b.to_vec(), 2, 1000)],
        );
        let (out, stats) = reassemble(&t, &NbssFramer);
        assert_eq!(out.len(), 1);
        assert_eq!(&out.messages()[0].payload()[..], &frame[..]);
        assert_eq!(stats.messages_out, 1);
        assert_eq!(stats.segments_in, 2);
        assert_eq!(stats.trailing_bytes, 0);
    }

    #[test]
    fn coalesced_messages_are_split() {
        let mut blob = nbss_frame(b"first");
        blob.extend_from_slice(&nbss_frame(b"second message"));
        let t = Trace::new("t", vec![tcp_msg(blob, 5, 1000)]);
        let (out, stats) = reassemble(&t, &NbssFramer);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.messages_out, 2);
        assert_eq!(&out.messages()[0].payload()[4..], b"first");
        assert_eq!(&out.messages()[1].payload()[4..], b"second message");
    }

    #[test]
    fn flows_are_kept_apart() {
        let f1 = nbss_frame(b"flow one");
        let f2 = nbss_frame(b"flow two");
        let t = Trace::new(
            "t",
            vec![
                tcp_msg(f1[..5].to_vec(), 1, 1000),
                tcp_msg(f2[..5].to_vec(), 2, 2000),
                tcp_msg(f1[5..].to_vec(), 3, 1000),
                tcp_msg(f2[5..].to_vec(), 4, 2000),
            ],
        );
        let (out, _) = reassemble(&t, &NbssFramer);
        assert_eq!(out.len(), 2);
        let payloads: Vec<&[u8]> = out.iter().map(|m| &m.payload()[4..]).collect();
        assert!(payloads.contains(&&b"flow one"[..]));
        assert!(payloads.contains(&&b"flow two"[..]));
    }

    #[test]
    fn invalid_prefix_resynchronizes() {
        let mut blob = vec![0xFF, 0xFF, 0xFF]; // garbage before the frame
        blob.extend_from_slice(&nbss_frame(b"recovered"));
        let t = Trace::new("t", vec![tcp_msg(blob, 1, 1000)]);
        let (out, stats) = reassemble(&t, &NbssFramer);
        assert_eq!(out.len(), 1);
        assert_eq!(&out.messages()[0].payload()[4..], b"recovered");
        assert_eq!(stats.resync_bytes, 3);
    }

    #[test]
    fn incomplete_trailing_frame_is_counted() {
        let frame = nbss_frame(b"never finished");
        let t = Trace::new("t", vec![tcp_msg(frame[..6].to_vec(), 1, 1000)]);
        let (out, stats) = reassemble(&t, &NbssFramer);
        assert!(out.is_empty());
        assert_eq!(stats.trailing_bytes, 6);
    }

    #[test]
    fn non_tcp_messages_pass_through() {
        let udp = Message::builder(Bytes::from_static(b"udp payload"))
            .timestamp_micros(9)
            .build();
        let t = Trace::new("t", vec![udp.clone()]);
        let (out, stats) = reassemble(&t, &NbssFramer);
        assert_eq!(out.len(), 1);
        assert_eq!(out.messages()[0], udp);
        assert_eq!(stats.segments_in, 0);
    }

    #[test]
    fn smb_corpus_roundtrips_through_segment_splitting() {
        // Split every generated SMB message into 3-byte TCP segments and
        // verify reassembly restores the original messages exactly.
        use protocols_like_smb::*;
        let originals = smb_like_messages();
        let mut segments = Vec::new();
        let mut ts = 0u64;
        for m in &originals {
            for chunk in m.chunks(3) {
                ts += 1;
                segments.push(tcp_msg(chunk.to_vec(), ts, 1000));
            }
        }
        let t = Trace::new("t", segments);
        let (out, stats) = reassemble(&t, &NbssFramer);
        assert_eq!(out.len(), originals.len());
        for (o, m) in originals.iter().zip(out.iter()) {
            assert_eq!(&m.payload()[..], &o[..]);
        }
        assert_eq!(stats.resync_bytes, 0);
    }

    /// Tiny local stand-in (the real SMB generator lives in the
    /// `protocols` crate, which depends on this crate).
    mod protocols_like_smb {
        use super::nbss_frame;

        pub fn smb_like_messages() -> Vec<Vec<u8>> {
            vec![
                nbss_frame(b"\xffSMBr first body"),
                nbss_frame(b"\xffSMBs second body, somewhat longer"),
                nbss_frame(b"\xffSMBu third"),
            ]
        }
    }

    #[test]
    fn identity_framer_passes_segments() {
        let t = Trace::new("t", vec![tcp_msg(b"abc".to_vec(), 1, 1000)]);
        let (out, _) = reassemble(&t, &IdentityFramer);
        assert_eq!(out.len(), 1);
        assert_eq!(&out.messages()[0].payload()[..], b"abc");
    }
}
