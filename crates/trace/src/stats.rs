//! Trace summary statistics: the first look an analyst takes at an
//! unknown capture before running any inference.

use crate::{Trace, Transport};
use std::collections::HashMap;

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of messages.
    pub messages: usize,
    /// Total payload bytes.
    pub total_bytes: usize,
    /// Minimum / median / maximum payload length.
    pub len_min: usize,
    /// Median payload length.
    pub len_median: usize,
    /// Maximum payload length.
    pub len_max: usize,
    /// Distinct payload lengths and their counts, ascending by length.
    pub length_histogram: Vec<(usize, usize)>,
    /// Distinct payloads over messages (1.0 = no duplicates).
    pub uniqueness: f64,
    /// Mean Shannon entropy of payload bytes, bits/byte.
    pub mean_entropy: f64,
    /// Per-offset byte entropy for the first `offset_profile.len()`
    /// bytes (columns where fewer than 2 messages reach are cut off).
    pub offset_profile: Vec<f64>,
    /// Message counts per transport.
    pub transports: Vec<(Transport, usize)>,
    /// Distinct (source, destination) endpoint pairs.
    pub flows: usize,
}

/// Computes [`TraceStats`]; `max_profile` caps the per-offset entropy
/// profile length.
pub fn trace_stats(trace: &Trace, max_profile: usize) -> TraceStats {
    let mut lens: Vec<usize> = trace.iter().map(|m| m.payload().len()).collect();
    lens.sort_unstable();
    let (len_min, len_median, len_max) = if lens.is_empty() {
        (0, 0, 0)
    } else {
        (lens[0], lens[lens.len() / 2], lens[lens.len() - 1])
    };
    let mut length_histogram: HashMap<usize, usize> = HashMap::new();
    for &l in &lens {
        *length_histogram.entry(l).or_insert(0) += 1;
    }
    let mut length_histogram: Vec<(usize, usize)> = length_histogram.into_iter().collect();
    length_histogram.sort_unstable();

    let distinct: std::collections::HashSet<&[u8]> =
        trace.iter().map(|m| &m.payload()[..]).collect();
    let uniqueness = if trace.is_empty() {
        1.0
    } else {
        distinct.len() as f64 / trace.len() as f64
    };

    let mean_entropy = if trace.is_empty() {
        0.0
    } else {
        trace
            .iter()
            .map(|m| mathkit_entropy(m.payload()))
            .sum::<f64>()
            / trace.len() as f64
    };

    // Per-offset entropy: how variable is each byte column? Low-entropy
    // prefixes reveal fixed headers at a glance.
    let profile_len = len_max.min(max_profile);
    let mut offset_profile = Vec::with_capacity(profile_len);
    for off in 0..profile_len {
        let column: Vec<u8> = trace
            .iter()
            .filter_map(|m| m.payload().get(off).copied())
            .collect();
        if column.len() < 2 {
            break;
        }
        offset_profile.push(mathkit_entropy(&column));
    }

    let mut transports: HashMap<Transport, usize> = HashMap::new();
    for m in trace {
        *transports.entry(m.transport()).or_insert(0) += 1;
    }
    let mut transports: Vec<(Transport, usize)> = transports.into_iter().collect();
    transports.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

    let flows: std::collections::HashSet<_> = trace.iter().map(|m| m.flow_key()).collect();

    TraceStats {
        messages: trace.len(),
        total_bytes: trace.total_payload_bytes(),
        len_min,
        len_median,
        len_max,
        length_histogram,
        uniqueness,
        mean_entropy,
        offset_profile,
        transports,
        flows: flows.len(),
    }
}

/// Local byte-entropy helper (kept here so `trace` needs no mathkit
/// dependency).
fn mathkit_entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Endpoint, Message};
    use bytes::Bytes;

    fn mk(payload: &[u8], sport: u16) -> Message {
        Message::builder(Bytes::copy_from_slice(payload))
            .source(Endpoint::udp([1, 1, 1, 1], sport))
            .destination(Endpoint::udp([2, 2, 2, 2], 53))
            .build()
    }

    #[test]
    fn basic_statistics() {
        let t = Trace::new(
            "t",
            vec![mk(b"aaaa", 1), mk(b"bbbbbbbb", 2), mk(b"aaaa", 1)],
        );
        let s = trace_stats(&t, 64);
        assert_eq!(s.messages, 3);
        assert_eq!(s.total_bytes, 16);
        assert_eq!((s.len_min, s.len_median, s.len_max), (4, 4, 8));
        assert_eq!(s.length_histogram, vec![(4, 2), (8, 1)]);
        assert!((s.uniqueness - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.flows, 2);
        assert_eq!(s.mean_entropy, 0.0); // constant payloads
    }

    #[test]
    fn offset_profile_flags_fixed_prefix() {
        // Messages share the first two bytes; the rest differ.
        let msgs: Vec<Message> = (0..10u8)
            .map(|i| mk(&[0xAB, 0xCD, i, i.wrapping_mul(37)], 1))
            .collect();
        let t = Trace::new("t", msgs);
        let s = trace_stats(&t, 16);
        assert_eq!(s.offset_profile.len(), 4);
        assert_eq!(s.offset_profile[0], 0.0);
        assert_eq!(s.offset_profile[1], 0.0);
        assert!(s.offset_profile[2] > 2.0);
    }

    #[test]
    fn profile_respects_cap_and_short_columns() {
        let t = Trace::new("t", vec![mk(&[1; 100], 1), mk(&[2; 100], 2)]);
        let s = trace_stats(&t, 10);
        assert_eq!(s.offset_profile.len(), 10);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("e", vec![]);
        let s = trace_stats(&t, 8);
        assert_eq!(s.messages, 0);
        assert_eq!(s.uniqueness, 1.0);
        assert!(s.offset_profile.is_empty());
        assert!(s.transports.is_empty());
    }
}
