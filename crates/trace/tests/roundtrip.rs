//! Property-based round-trip tests for pcap encoding and preprocessing.

use bytes::Bytes;
use proptest::prelude::*;
use trace::{pcap, Endpoint, Message, Preprocessor, Trace, Transport};

fn arb_transport() -> impl Strategy<Value = Transport> {
    prop_oneof![
        Just(Transport::Udp),
        Just(Transport::Tcp),
        Just(Transport::Link)
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        prop::collection::vec(any::<u8>(), 0..300),
        any::<u32>(),
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        arb_transport(),
    )
        .prop_map(|(payload, ts, sip, dip, sport, dport, transport)| {
            let (src, dst) = match transport {
                Transport::Link => (
                    Endpoint::mac([2, 0, sip[0], sip[1], sip[2], sip[3]]),
                    Endpoint::mac([2, 0, dip[0], dip[1], dip[2], dip[3]]),
                ),
                _ => (Endpoint::udp(sip, sport), Endpoint::udp(dip, dport)),
            };
            Message::builder(Bytes::from(payload))
                .timestamp_micros(u64::from(ts))
                .source(src)
                .destination(dst)
                .transport(transport)
                .build()
        })
}

proptest! {
    #[test]
    fn pcap_roundtrip_is_lossless(msgs in prop::collection::vec(arb_message(), 0..40)) {
        let t = Trace::new("prop", msgs);
        let img = pcap::write_to_vec(&t).unwrap();
        let back = pcap::read_from_slice(&img, "prop").unwrap();
        prop_assert_eq!(back.len(), t.len());
        for (a, b) in t.iter().zip(back.iter()) {
            prop_assert_eq!(a.payload(), b.payload());
            prop_assert_eq!(a.timestamp_micros(), b.timestamp_micros());
            prop_assert_eq!(a.source(), b.source());
            prop_assert_eq!(a.destination(), b.destination());
            prop_assert_eq!(a.transport(), b.transport());
        }
    }

    #[test]
    fn dedup_is_idempotent(msgs in prop::collection::vec(arb_message(), 0..40)) {
        let t = Trace::new("prop", msgs);
        let once = Preprocessor::new().deduplicate(true).apply(&t);
        let twice = Preprocessor::new().deduplicate(true).apply(&once);
        prop_assert_eq!(once.len(), twice.len());
        // All payloads unique after dedup.
        let mut seen = std::collections::HashSet::new();
        for m in &once {
            prop_assert!(seen.insert(m.payload().to_vec()));
        }
    }

    #[test]
    fn truncate_never_exceeds_limit(
        msgs in prop::collection::vec(arb_message(), 0..40),
        limit in 0usize..50,
    ) {
        let t = Trace::new("prop", msgs);
        let out = Preprocessor::new().truncate(limit).apply(&t);
        prop_assert!(out.len() <= limit);
        prop_assert!(out.len() <= t.len());
    }
}
