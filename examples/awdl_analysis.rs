//! Analyzing a proprietary link-layer protocol: Apple Wireless Direct
//! Link (AWDL).
//!
//! AWDL is the paper's motivating case (the AWDL reverse engineering
//! enabled the discovery of a zero-click iOS exploit): a proprietary
//! protocol without IP encapsulation, which rule-based tools like
//! FieldHunter cannot analyze at all because their heuristics need flow
//! context. Field type clustering needs none — it runs on the message
//! bytes alone.
//!
//! Run with: `cargo run -p fieldclust --example awdl_analysis`

use fieldclust::{evaluate, FieldTypeClusterer};
use fieldhunter::{FieldHunter, FieldHunterError};
use protocols::{corpus, Protocol};
use segment::nemesys::Nemesys;
use segment::Segmenter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = corpus::build_trace(Protocol::Awdl, 300, 7);
    println!(
        "AWDL trace: {} action frames (link layer, no IP)",
        trace.len()
    );

    // The state of the art cannot even start: no addresses, no ports,
    // no request/response pairing.
    match FieldHunter::default().analyze(&trace) {
        Err(FieldHunterError::NoContext) => {
            println!("FieldHunter: fails — no IP/transport context available");
        }
        other => println!("FieldHunter: unexpected result {other:?}"),
    }

    // Field type clustering runs regardless.
    let segmentation = Nemesys::default().segment_trace(&trace)?;
    let result = FieldTypeClusterer::default().cluster_trace(&trace, &segmentation)?;
    println!(
        "clustering: {} pseudo data types over {} unique segments (eps = {:.3})",
        result.clustering.n_clusters(),
        result.store.segments.len(),
        result.params.epsilon
    );

    // Since this trace is synthetic we do have ground truth — score the
    // result the way the paper's Table II does.
    let gt = corpus::ground_truth(Protocol::Awdl, &trace);
    let eval = evaluate(&result, &trace, &gt);
    println!(
        "vs ground truth: precision {:.2}, recall {:.2}, F¼ {:.2}, coverage {:.0}%",
        eval.metrics.precision,
        eval.metrics.recall,
        eval.metrics.f_score,
        eval.coverage.ratio() * 100.0
    );

    // What an analyst actually looks at: cluster content previews.
    for (id, members) in result.cluster_values().iter().enumerate().take(8) {
        let preview = members
            .iter()
            .take(2)
            .map(|v| {
                v.iter()
                    .take(8)
                    .map(|b| format!("{b:02x}"))
                    .collect::<String>()
            })
            .collect::<Vec<_>>()
            .join(" / ");
        println!(
            "  pseudo type {id:2}: {:4} values  [{preview}…]",
            members.len()
        );
    }
    Ok(())
}
