//! Deriving fuzzer configuration from pseudo data types.
//!
//! The paper motivates field type clustering with smart fuzzing: knowing
//! which message bytes belong to which value domain tells a fuzzer where
//! mutations are promising (high-variance value fields) and where they
//! only break framing (constants/magics). This example clusters a DHCP
//! trace and emits a mutation plan per pseudo data type.
//!
//! Run with: `cargo run -p fieldclust --example fuzzing_targets`

use fieldclust::FieldTypeClusterer;
use protocols::{corpus, Protocol};
use segment::nemesys::Nemesys;
use segment::Segmenter;
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = corpus::build_trace(Protocol::Dhcp, 200, 11);
    let segmentation = Nemesys::default().segment_trace(&trace)?;
    let result = FieldTypeClusterer::default().cluster_trace(&trace, &segmentation)?;

    println!(
        "# fuzzing plan derived from {} pseudo data types\n",
        result.clustering.n_clusters()
    );
    for (id, members) in result.clustering.clusters().iter().enumerate() {
        let segs: Vec<_> = members.iter().map(|&i| &result.store.segments[i]).collect();
        let occurrences: usize = segs.iter().map(|s| s.occurrences()).sum();
        let distinct: HashSet<&[u8]> = segs.iter().map(|s| &s.value[..]).collect();
        let lens: HashSet<usize> = segs.iter().map(|s| s.value.len()).collect();
        let variability = distinct.len() as f64 / occurrences as f64;

        // Value-domain summary an analyst (or fuzzer generator) can act
        // on: observed lengths and byte ranges per position.
        let min_len = lens.iter().min().copied().unwrap_or(0);
        let mut lo = vec![u8::MAX; min_len];
        let mut hi = vec![u8::MIN; min_len];
        for s in &segs {
            for (i, &b) in s.value.iter().take(min_len).enumerate() {
                lo[i] = lo[i].min(b);
                hi[i] = hi[i].max(b);
            }
        }

        let strategy = if variability < 0.05 {
            "KEEP  (constant/magic: mutate only to test parser strictness)"
        } else if lens.len() > 1 {
            "GROW  (variable length: fuzz lengths and content)"
        } else {
            "MUTATE (value field: sample within and beyond observed domain)"
        };
        println!(
            "pseudo type {id:2}: {occurrences:4} occurrences, {:3} distinct values, lengths {:?}",
            distinct.len(),
            {
                let mut v: Vec<_> = lens.iter().copied().collect();
                v.sort_unstable();
                v
            }
        );
        let domain: Vec<String> = lo
            .iter()
            .zip(&hi)
            .take(8)
            .map(|(a, b)| format!("{a:02x}-{b:02x}"))
            .collect();
        println!("    byte domains: [{}]", domain.join(" "));
        println!("    strategy: {strategy}\n");
    }

    let cov = result.coverage(&trace);
    println!(
        "plan covers {:.0}% of message bytes ({} of {})",
        cov.ratio() * 100.0,
        cov.covered_bytes,
        cov.total_bytes
    );
    Ok(())
}
