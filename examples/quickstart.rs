//! Quickstart: cluster the field data types of an NTP trace.
//!
//! Demonstrates the complete workflow of the paper's Fig. 1 as a staged
//! `AnalysisSession`: build (or load) a trace, segment it heuristically,
//! then drive the dedup → matrix → autoconf → cluster → refine stages,
//! inspecting the cached artifacts along the way. (For a one-shot run,
//! `FieldTypeClusterer::cluster_trace` wraps the same session.)
//!
//! Run with: `cargo run -p fieldclust --example quickstart`

use fieldclust::{AnalysisSession, FieldTypeClusterer};
use protocols::{corpus, Protocol};
use segment::nemesys::Nemesys;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Obtain a trace. Here: 200 synthetic NTP messages; in practice
    //    you would read a pcap with `trace::pcap::read_from_file` and
    //    clean it with `trace::Preprocessor` (or
    //    `AnalysisSession::preprocess`).
    let trace = corpus::build_trace(Protocol::Ntp, 200, 42);
    println!(
        "trace: {} messages, {} payload bytes",
        trace.len(),
        trace.total_payload_bytes()
    );

    // 2. Start a session and segment the messages without any protocol
    //    knowledge.
    let mut session = AnalysisSession::new(&trace, FieldTypeClusterer::default());
    let segmentation = session.segment_with(&Nemesys::default())?;
    println!("segments: {} candidates", segmentation.total_segments());

    // 3. Drive the remaining stages. Each artifact is computed once and
    //    cached — asking again (or asking for a later stage) reuses it.
    let unique = session.store()?.segments.len();
    println!("dedup: {unique} unique segments enter clustering");
    let params = session.autoconf()?;
    println!(
        "auto-configured: eps = {:.3} (k = {}, min_samples = {})",
        params.epsilon, params.k, params.min_samples
    );

    // 4. Finish: cluster + refine, assembled into the pipeline result.
    let result = session.finish()?;
    println!("epsilon source: {:?}", result.epsilon_source);

    // 5. Inspect the pseudo data types.
    println!(
        "clusters: {} ({} unique segments, {} noise)",
        result.clustering.n_clusters(),
        result.store.segments.len(),
        result.clustering.noise().len()
    );
    for (id, members) in result.cluster_values().iter().enumerate() {
        let sample: Vec<String> = members
            .iter()
            .take(3)
            .map(|v| {
                v.iter()
                    .map(|b| format!("{b:02x}"))
                    .collect::<Vec<_>>()
                    .join("")
            })
            .collect();
        println!(
            "  cluster {id}: {} segments, e.g. {}",
            members.len(),
            sample.join(", ")
        );
    }
    let coverage = result.coverage(&trace);
    println!(
        "coverage: {:.0}% of message bytes carry a pseudo data type",
        coverage.ratio() * 100.0
    );
    Ok(())
}
