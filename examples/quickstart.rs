//! Quickstart: cluster the field data types of an NTP trace.
//!
//! Demonstrates the complete workflow of the paper's Fig. 1: build (or
//! load) a trace, segment it heuristically, cluster the segments into
//! pseudo data types, and inspect the result.
//!
//! Run with: `cargo run -p fieldclust --example quickstart`

use fieldclust::FieldTypeClusterer;
use protocols::{corpus, Protocol};
use segment::nemesys::Nemesys;
use segment::Segmenter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Obtain a trace. Here: 200 synthetic NTP messages; in practice
    //    you would read a pcap with `trace::pcap::read_from_file` and
    //    clean it with `trace::Preprocessor`.
    let trace = corpus::build_trace(Protocol::Ntp, 200, 42);
    println!(
        "trace: {} messages, {} payload bytes",
        trace.len(),
        trace.total_payload_bytes()
    );

    // 2. Segment the messages without any protocol knowledge.
    let segmentation = Nemesys::default().segment_trace(&trace)?;
    println!("segments: {} candidates", segmentation.total_segments());

    // 3. Cluster segments into pseudo data types. Parameters are
    //    auto-configured from the dissimilarity distribution.
    let result = FieldTypeClusterer::default().cluster_trace(&trace, &segmentation)?;
    println!(
        "auto-configured: eps = {:.3} (k = {}, min_samples = {}, source: {:?})",
        result.params.epsilon, result.params.k, result.params.min_samples, result.epsilon_source
    );

    // 4. Inspect the pseudo data types.
    println!(
        "clusters: {} ({} unique segments, {} noise)",
        result.clustering.n_clusters(),
        result.store.segments.len(),
        result.clustering.noise().len()
    );
    for (id, members) in result.cluster_values().iter().enumerate() {
        let sample: Vec<String> = members
            .iter()
            .take(3)
            .map(|v| {
                v.iter()
                    .map(|b| format!("{b:02x}"))
                    .collect::<Vec<_>>()
                    .join("")
            })
            .collect();
        println!(
            "  cluster {id}: {} segments, e.g. {}",
            members.len(),
            sample.join(", ")
        );
    }
    let coverage = result.coverage(&trace);
    println!(
        "coverage: {:.0}% of message bytes carry a pseudo data type",
        coverage.ratio() * 100.0
    );
    Ok(())
}
