//! From pseudo data types to meaning: semantic interpretation and
//! misbehavior detection.
//!
//! This example exercises the paper's §V future-work directions that the
//! library implements: every cluster gets a semantic hypothesis (length
//! field? counter? address? text?), and the per-cluster value models
//! flag messages whose fields fit no known data type — a lightweight
//! misbehavior detector.
//!
//! Run with: `cargo run -p fieldclust --example semantics_report`

use bytes::Bytes;
use fieldclust::fuzzgen::MisbehaviorDetector;
use fieldclust::semantics::{interpret, SemanticsConfig};
use fieldclust::FieldTypeClusterer;
use protocols::{corpus, Protocol};
use segment::nemesys::Nemesys;
use segment::Segmenter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = corpus::build_trace(Protocol::Smb, 160, 21);
    let segmentation = Nemesys::default().segment_trace(&trace)?;
    let result = FieldTypeClusterer::default().cluster_trace(&trace, &segmentation)?;

    // 1. Semantic hypotheses per pseudo data type.
    println!(
        "semantic interpretation of {} pseudo data types:\n",
        result.clustering.n_clusters()
    );
    for sem in interpret(&result, &trace, &SemanticsConfig::default()) {
        println!(
            "  type {:2}: {:12} ({:3.0}%)  {}",
            sem.cluster,
            sem.hypothesis.to_string(),
            sem.confidence * 100.0,
            sem.evidence
        );
    }

    // 2. Misbehavior detection: score unseen messages against the
    //    learned value models.
    let detector = MisbehaviorDetector::from_clustering(&result);
    let nemesys = Nemesys::default();
    let score_of = |payload: &[u8]| {
        let segs = nemesys.segment_message(payload);
        detector.score_message(payload, &segs)
    };

    // Fresh genuine traffic from a different seed...
    let fresh = corpus::build_trace(Protocol::Smb, 10, 99);
    let genuine: Vec<f64> = fresh.iter().map(|m| score_of(m.payload())).collect();

    // ...versus tampered messages (a corrupted header injected mid-flow).
    let tampered: Vec<f64> = fresh
        .iter()
        .map(|m| {
            let mut p = m.payload().to_vec();
            for b in p.iter_mut().skip(4).take(24) {
                *b = b.wrapping_mul(167).wrapping_add(13);
            }
            let msg = trace::Message::builder(Bytes::from(p)).build();
            score_of(msg.payload())
        })
        .collect();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("\nmisbehavior scores (higher = more like the learned protocol):");
    println!("  genuine traffic : {:6.2} bits/byte avg", mean(&genuine));
    println!("  tampered traffic: {:6.2} bits/byte avg", mean(&tampered));
    if mean(&genuine) > mean(&tampered) {
        println!("  -> tampering is detectable from pseudo data types alone");
    }
    Ok(())
}
