//! The honest scenario: a pcap of a *truly unknown* protocol.
//!
//! Everything the other examples take from the corpus is done here the
//! way a real analysis would: write/read a pcap file, preprocess the
//! capture (filter, de-duplicate), try all three heuristic segmenters,
//! cluster each segmentation, and compare what the segmenters make of
//! the unknown traffic — without ever consulting ground truth.
//!
//! Run with: `cargo run -p fieldclust --example unknown_protocol`

use fieldclust::FieldTypeClusterer;
use protocols::{Protocol, ProtocolSpec};
use segment::csp::Csp;
use segment::nemesys::Nemesys;
use segment::netzob::Netzob;
use segment::Segmenter;
use trace::{pcap, Preprocessor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand-in for "someone hands you a capture": an AU capture written
    // to disk. From here on we treat it as unknown bytes.
    let capture_path = std::env::temp_dir().join("fieldclust-unknown.pcap");
    pcap::write_to_file(&Protocol::Au.generate(45, 99), &capture_path)?;

    // 1. Load and preprocess: de-duplicate payloads (the paper's §III-A).
    let raw = pcap::read_from_file(&capture_path, "unknown")?;
    let trace = Preprocessor::new().deduplicate(true).apply(&raw);
    println!(
        "capture: {} messages after de-duplication ({} raw)",
        trace.len(),
        raw.len()
    );

    // 2. Try each segmenter; a real analysis picks the one whose
    //    clusters look most coherent (§IV-C: no segmenter wins always).
    let segmenters: Vec<(&str, Box<dyn Segmenter>)> = vec![
        ("nemesys", Box::new(Nemesys::default())),
        ("netzob", Box::new(Netzob::default())),
        ("csp", Box::new(Csp::default())),
    ];

    for (name, segmenter) in segmenters {
        match segmenter.segment_trace(&trace) {
            Err(e) => println!("{name:8} fails: {e}"),
            Ok(segmentation) => {
                match FieldTypeClusterer::default().cluster_trace(&trace, &segmentation) {
                    Err(e) => println!("{name:8} segmented, but clustering failed: {e}"),
                    Ok(result) => {
                        let cov = result.coverage(&trace);
                        println!(
                            "{name:8} -> {:2} pseudo types, {:3} unique segments, {:2} noise, eps {:.3}, coverage {:3.0}%",
                            result.clustering.n_clusters(),
                            result.store.segments.len(),
                            result.clustering.noise().len(),
                            result.params.epsilon,
                            cov.ratio() * 100.0
                        );
                        // Show the analyst's view of the two biggest
                        // pseudo types.
                        let mut clusters = result.clustering.clusters();
                        clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
                        for members in clusters.iter().take(2) {
                            let sample: Vec<String> = members
                                .iter()
                                .take(3)
                                .map(|&i| {
                                    result.store.segments[i]
                                        .value
                                        .iter()
                                        .take(6)
                                        .map(|b| format!("{b:02x}"))
                                        .collect::<String>()
                                })
                                .collect();
                            println!("          [{}]", sample.join(", "));
                        }
                    }
                }
            }
        }
    }

    std::fs::remove_file(&capture_path).ok();
    Ok(())
}
