#!/usr/bin/env bash
# Repository gate: formatting, lints, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
cargo bench -p bench --no-run

# Artifact-store smoke test: a warm `analyze --cache-dir` run must hit
# the cache (no misses, no writes) and reproduce the cold run's report
# byte for byte.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q -p cli -- generate ntp 120 "$tmp/smoke.pcap" --seed 11
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --cache-dir "$tmp/cache" \
    >"$tmp/cold.out" 2>"$tmp/cold.err"
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --cache-dir "$tmp/cache" \
    >"$tmp/warm.out" 2>"$tmp/warm.err"
grep -q 'cache: hits=0' "$tmp/cold.err"
grep -Eq 'cache: hits=[1-9][0-9]* misses=0 writes=0' "$tmp/warm.err"
cmp "$tmp/cold.out" "$tmp/warm.out"
echo "store smoke test: warm run hit the cache and reproduced the cold report"

# Peak-RSS smoke test: the tiled out-of-core build at u=2000 must stay
# under a fixed 16 MiB budget — below what materializing the full
# condensed matrix (16 MB at u=2000) on top of the process baseline
# would need. `tiledmem` exits nonzero when its own VmHWM exceeds the
# budget; where GNU time is available, cross-check its measurement too.
rss_budget=16777216
cargo build --release -q -p bench --bin tiledmem
if [ -x /usr/bin/time ]; then
    /usr/bin/time -v ./target/release/tiledmem 2000 256 "$rss_budget" 2>"$tmp/time.err"
    rss_kb=$(awk '/Maximum resident set size/ {print $NF}' "$tmp/time.err")
    if [ "$((rss_kb * 1024))" -gt "$rss_budget" ]; then
        echo "tiled build peak RSS ${rss_kb} kB exceeds budget ${rss_budget} B" >&2
        exit 1
    fi
else
    ./target/release/tiledmem 2000 256 "$rss_budget"
fi
echo "rss smoke test: tiled build at u=2000 stayed under $rss_budget bytes"
