#!/usr/bin/env bash
# Repository gate: formatting, lints, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
cargo bench -p bench --no-run
