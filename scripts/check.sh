#!/usr/bin/env bash
# Repository gate: formatting, lints, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
cargo bench -p bench --no-run

# Artifact-store smoke test: a warm `analyze --cache-dir` run must hit
# the cache (no misses, no writes) and reproduce the cold run's report
# byte for byte.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q -p cli -- generate ntp 120 "$tmp/smoke.pcap" --seed 11
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --cache-dir "$tmp/cache" \
    >"$tmp/cold.out" 2>"$tmp/cold.err"
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --cache-dir "$tmp/cache" \
    >"$tmp/warm.out" 2>"$tmp/warm.err"
grep -q 'cache: hits=0' "$tmp/cold.err"
grep -Eq 'cache: hits=[1-9][0-9]* misses=0 writes=0' "$tmp/warm.err"
cmp "$tmp/cold.out" "$tmp/warm.out"
echo "store smoke test: warm run hit the cache and reproduced the cold report"

# Mmap-fallback equivalence smoke test: the same warm run with the
# zero-copy mmap read path disabled (plain heap reads) must still hit
# the cache and produce the identical report — the read strategy is an
# I/O knob, never a result knob.
FTC_STORE_NO_MMAP=1 cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" \
    --cache-dir "$tmp/cache" >"$tmp/warm-heap.out" 2>"$tmp/warm-heap.err"
grep -Eq 'cache: hits=[1-9][0-9]* misses=0 writes=0' "$tmp/warm-heap.err"
cmp "$tmp/warm.out" "$tmp/warm-heap.out"
echo "mmap smoke test: heap-read warm run reproduced the mmap warm report byte for byte"

# Neighbor-backend equivalence smoke test: the same capture analyzed
# through every neighbor backend (matrix row scans, tiled + sorted
# index, vantage-point forest, vptree + SWAR kernel, length-stratified
# forest) must produce byte-identical reports — the backend is a
# performance knob, never a result knob. The NTP capture's NEMESYS
# segments are mixed-length, so the stratified run must also report
# nonzero prune counters: its speed comes from skipping work, and the
# counters prove the skipping actually happened.
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --neighbor-backend matrix \
    --report "$tmp/backend-matrix.md"
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --neighbor-backend tiled --tile-rows 64 \
    --report "$tmp/backend-tiled.md"
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --neighbor-backend vptree \
    --report "$tmp/backend-vptree.md"
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --neighbor-backend vptree --swar \
    --report "$tmp/backend-swar.md"
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --neighbor-backend stratified \
    --report "$tmp/backend-stratified.md" 2>"$tmp/backend-stratified.err"
cmp "$tmp/backend-matrix.md" "$tmp/backend-tiled.md"
cmp "$tmp/backend-matrix.md" "$tmp/backend-vptree.md"
cmp "$tmp/backend-matrix.md" "$tmp/backend-swar.md"
cmp "$tmp/backend-matrix.md" "$tmp/backend-stratified.md"
grep -Eq 'neighbors: kernel_evals=[1-9][0-9]* pruned=[1-9][0-9]*' "$tmp/backend-stratified.err"
echo "backend smoke test: matrix, tiled, vptree, vptree+swar and stratified reports are byte-identical"

# Peak-RSS smoke test: the tiled out-of-core build at u=2000 must stay
# under a fixed 16 MiB budget — below what materializing the full
# condensed matrix (16 MB at u=2000) on top of the process baseline
# would need. `tiledmem` exits nonzero when its own VmHWM exceeds the
# budget; where GNU time is available, cross-check its measurement too.
rss_budget=16777216
cargo build --release -q -p bench --bin tiledmem
if [ -x /usr/bin/time ]; then
    /usr/bin/time -v ./target/release/tiledmem 2000 256 "$rss_budget" 2>"$tmp/time.err"
    rss_kb=$(awk '/Maximum resident set size/ {print $NF}' "$tmp/time.err")
    if [ "$((rss_kb * 1024))" -gt "$rss_budget" ]; then
        echo "tiled build peak RSS ${rss_kb} kB exceeds budget ${rss_budget} B" >&2
        exit 1
    fi
else
    ./target/release/tiledmem 2000 256 "$rss_budget"
fi
echo "rss smoke test: tiled build at u=2000 stayed under $rss_budget bytes"

# Same budget for the matrix-free vptree path: the ladder's budget mode
# skips the matrix oracle rungs and self-checks VmHWM, so the vp-forest
# ε-search at u=2000 — including the batched parallel query pass, which
# every rung runs and pins bit-identical to the scalar queries — must
# fit where the full matrix would not.
cargo build --release -q -p bench --bin neighbor_ladder
./target/release/neighbor_ladder 2000 128 "$rss_budget" >"$tmp/ladder.out"
grep -q 'u=2000 backend=vptree+batch' "$tmp/ladder.out"
grep -q 'corpus=mixed u=2000 backend=stratified+batch' "$tmp/ladder.out"
grep -q 'corpus=mixed u=2000 stratified_speedup_vs_linear' "$tmp/ladder.out"
echo "rss smoke test: vptree and stratified search at u=2000 stayed under $rss_budget bytes"

# Daemon smoke test: ftcd on an ephemeral port must serve a report
# byte-identical to the offline CLI's, report sane stats, and exit 0
# after a draining shutdown.
cargo build --release -q -p serve --bin ftcd
cargo run --release -q -p cli -- generate dns 80 "$tmp/daemon.pcap" --seed 21
cargo run --release -q -p cli -- analyze "$tmp/daemon.pcap" --report "$tmp/offline.md"
./target/release/ftcd --addr 127.0.0.1:0 --port-file "$tmp/port" &
ftcd_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmp/port" ] && break
    sleep 0.1
done
[ -s "$tmp/port" ] || { echo "ftcd never wrote its port file" >&2; exit 1; }
addr="127.0.0.1:$(cat "$tmp/port")"
cargo run --release -q -p cli -- submit "$tmp/daemon.pcap" --addr "$addr" --report "$tmp/daemon.md"
cmp "$tmp/offline.md" "$tmp/daemon.md"
cargo run --release -q -p cli -- stats --addr "$addr" | tee "$tmp/stats.out"
grep -q 'accepted=1 rejected=0 cancelled=0 completed=1 failed=0 queued=0' "$tmp/stats.out"
cargo run --release -q -p cli -- shutdown --addr "$addr"
wait "$ftcd_pid"
echo "daemon smoke test: ftcd report matched the offline CLI byte for byte and drained cleanly"

# Streaming smoke test: a capture appended in 3 slices under `follow`
# must produce one drift record per slice and a final report
# byte-identical to a one-shot `analyze` of the full capture. The
# generator is sequentially seeded, so the 40-message capture is an
# exact prefix of the 80- and 120-message ones; `mv` swaps each larger
# version into place atomically, exactly how the follow-mode docs tell
# writers to grow a capture.
for n in 40 80 120; do
    cargo run --release -q -p cli -- generate ntp "$n" "$tmp/slice$n.pcap" --seed 31
done
cargo run --release -q -p cli -- follow "$tmp/grow.pcap" \
    --batches 3 --batch-msgs 40 --batch-interval 100 --idle-exit 30000 \
    --drift-log "$tmp/drift.jsonl" --report "$tmp/follow.md" &
follow_pid=$!
for n in 40 80 120; do
    sleep 0.7
    mv "$tmp/slice$n.pcap" "$tmp/grow.pcap"
done
wait "$follow_pid"
drift_records=$(wc -l <"$tmp/drift.jsonl")
if [ "$drift_records" -lt 3 ]; then
    echo "follow produced $drift_records drift records, expected >= 3" >&2
    exit 1
fi
grep -q '"batch":0' "$tmp/drift.jsonl"
cargo run --release -q -p cli -- generate ntp 120 "$tmp/full.pcap" --seed 31
cargo run --release -q -p cli -- analyze "$tmp/full.pcap" --report "$tmp/oneshot.md"
cmp "$tmp/follow.md" "$tmp/oneshot.md"
echo "streaming smoke test: 3 follow batches drifted and converged to the one-shot report byte for byte"

# State-machine smoke test: inferring a machine from a multi-flow
# capture must emit byte-identical DOT across thread counts, and the
# warm run must serve the persisted machine without rebuilding anything
# (no misses, no writes).
cargo run --release -q -p cli -- generate ntp 60 "$tmp/fsm.pcap" --seed 41
cargo run --release -q -p cli -- statemachine "$tmp/fsm.pcap" --cache-dir "$tmp/fsm-cache" \
    --threads 1 --dot "$tmp/fsm-t1.dot" 2>"$tmp/fsm-cold.err"
cargo run --release -q -p cli -- statemachine "$tmp/fsm.pcap" --cache-dir "$tmp/fsm-cache" \
    --threads 4 --dot "$tmp/fsm-t4.dot" 2>"$tmp/fsm-warm.err"
cmp "$tmp/fsm-t1.dot" "$tmp/fsm-t4.dot"
grep -q '^digraph' "$tmp/fsm-t1.dot"
grep -q 'cache: hits=0' "$tmp/fsm-cold.err"
grep -Eq 'cache: hits=[1-9][0-9]* misses=0 writes=0' "$tmp/fsm-warm.err"
echo "fsm smoke test: DOT is thread-invariant and the warm run rebuilt nothing"
