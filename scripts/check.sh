#!/usr/bin/env bash
# Repository gate: formatting, lints, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
cargo bench -p bench --no-run

# Artifact-store smoke test: a warm `analyze --cache-dir` run must hit
# the cache (no misses, no writes) and reproduce the cold run's report
# byte for byte.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q -p cli -- generate ntp 120 "$tmp/smoke.pcap" --seed 11
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --cache-dir "$tmp/cache" \
    >"$tmp/cold.out" 2>"$tmp/cold.err"
cargo run --release -q -p cli -- analyze "$tmp/smoke.pcap" --cache-dir "$tmp/cache" \
    >"$tmp/warm.out" 2>"$tmp/warm.err"
grep -q 'cache: hits=0' "$tmp/cold.err"
grep -Eq 'cache: hits=[1-9][0-9]* misses=0 writes=0' "$tmp/warm.err"
cmp "$tmp/cold.out" "$tmp/warm.out"
echo "store smoke test: warm run hit the cache and reproduced the cold report"
