//! Cross-crate integration: field type clustering versus the
//! FieldHunter baseline (the paper's §IV-D comparison, small scale).

use fieldclust::FieldTypeClusterer;
use fieldhunter::{FieldHunter, FieldHunterError};
use protocols::{corpus, Protocol};
use segment::nemesys::Nemesys;
use segment::Segmenter;

#[test]
fn clustering_coverage_dwarfs_fieldhunter() {
    // The headline claim: clustering covers far more message bytes than
    // the rule-based state of the art (87% vs 3% on average in the
    // paper; the exact factor varies with our synthetic traces).
    let mut clustering_total = 0.0;
    let mut fieldhunter_total = 0.0;
    let mut protocols_counted = 0.0;
    for protocol in [Protocol::Dns, Protocol::Ntp, Protocol::Nbns, Protocol::Dhcp] {
        let trace = corpus::build_trace(protocol, 120, corpus::DEFAULT_SEED);
        let seg = Nemesys::default().segment_trace(&trace).unwrap();
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        let fh = FieldHunter::default().analyze(&trace).unwrap();
        clustering_total += result.coverage(&trace).ratio();
        fieldhunter_total += fh.coverage.ratio();
        protocols_counted += 1.0;
    }
    let clustering_avg = clustering_total / protocols_counted;
    let fieldhunter_avg = fieldhunter_total / protocols_counted;
    assert!(
        clustering_avg > 3.0 * fieldhunter_avg,
        "clustering {clustering_avg:.2} vs fieldhunter {fieldhunter_avg:.2}"
    );
    assert!(
        clustering_avg > 0.4,
        "clustering avg coverage = {clustering_avg:.2}"
    );
}

#[test]
fn fieldhunter_finds_a_couple_of_fields_per_protocol() {
    // "FieldHunter is able to discern the concrete data type of
    // typically one or two fields per message."
    for protocol in [Protocol::Dns, Protocol::Dhcp] {
        let trace = corpus::build_trace(protocol, 150, 5);
        let analysis = FieldHunter::default().analyze(&trace).unwrap();
        assert!(!analysis.fields.is_empty(), "{protocol}: no fields at all");
        assert!(
            analysis.fields.len() <= 10,
            "{protocol}: implausibly many rule hits ({})",
            analysis.fields.len()
        );
    }
    // NBNS is broadcast-heavy: without request/response pairs most rules
    // cannot fire — FieldHunter finds next to nothing.
    let nbns = corpus::build_trace(Protocol::Nbns, 150, 5);
    let analysis = FieldHunter::default().analyze(&nbns).unwrap();
    assert!(
        analysis.fields.len() <= 3,
        "nbns: {} fields",
        analysis.fields.len()
    );
}

#[test]
fn proprietary_protocols_blocked_for_baseline_but_not_clustering() {
    for protocol in [Protocol::Awdl, Protocol::Au] {
        let n = if protocol == Protocol::Au { 12 } else { 60 };
        let trace = corpus::build_trace(protocol, n, 6);
        assert_eq!(
            FieldHunter::default().analyze(&trace).unwrap_err(),
            FieldHunterError::NoContext,
            "{protocol}"
        );
        let seg = Nemesys::default().segment_trace(&trace).unwrap();
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        assert!(result.clustering.n_clusters() >= 1, "{protocol}");
    }
}
