//! End-to-end determinism and serialization round-trips: identical
//! inputs must give byte-identical results across the whole stack, and
//! results must survive a pcap detour.

use fieldclust::FieldTypeClusterer;
use protocols::{corpus, Protocol};
use segment::nemesys::Nemesys;
use segment::Segmenter;
use trace::{pcap, Preprocessor};

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let trace = corpus::build_trace(Protocol::Smb, 60, 1234);
        let seg = Nemesys::default().segment_trace(&trace).unwrap();
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        (
            result.params.epsilon,
            result.params.k,
            result.clustering.labels().to_vec(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn pcap_detour_preserves_results() {
    // Writing the trace to a pcap file and reading it back must not
    // change the clustering in any way.
    let trace = corpus::build_trace(Protocol::Dns, 80, 77);
    let image = pcap::write_to_vec(&trace).unwrap();
    let reread = Preprocessor::new().apply(&pcap::read_from_slice(&image, "dns").unwrap());

    assert_eq!(trace.len(), reread.len());
    for (a, b) in trace.iter().zip(reread.iter()) {
        assert_eq!(a.payload(), b.payload());
    }

    let cluster = |t: &trace::Trace| {
        let seg = Nemesys::default().segment_trace(t).unwrap();
        FieldTypeClusterer::default()
            .cluster_trace(t, &seg)
            .unwrap()
            .clustering
            .labels()
            .to_vec()
    };
    assert_eq!(cluster(&trace), cluster(&reread));
}

#[test]
fn different_seeds_give_different_traces_but_valid_results() {
    let mut epsilons = std::collections::HashSet::new();
    for seed in [1u64, 2, 3] {
        let trace = corpus::build_trace(Protocol::Ntp, 60, seed);
        let seg = Nemesys::default().segment_trace(&trace).unwrap();
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        assert!(result.params.epsilon > 0.0);
        epsilons.insert(format!("{:.6}", result.params.epsilon));
    }
    // Epsilon adapts to the data; at least two of the three runs should
    // differ.
    assert!(
        epsilons.len() >= 2,
        "epsilons suspiciously constant: {epsilons:?}"
    );
}
