//! Cross-crate integration for the §V extension features: semantics,
//! value models, message types and reports — all through the public API.

use fieldclust::fuzzgen::{MisbehaviorDetector, ValueModel};
use fieldclust::msgtype::{identify_message_types, MessageTypeConfig};
use fieldclust::report::{render_markdown, ReportOptions};
use fieldclust::semantics::{interpret, SemanticHypothesis, SemanticsConfig};
use fieldclust::{truth, FieldTypeClusterer};
use protocols::{corpus, Protocol, ProtocolSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pipeline(
    protocol: Protocol,
    n: usize,
    seed: u64,
) -> (trace::Trace, fieldclust::PseudoTypeClustering) {
    let trace = corpus::build_trace(protocol, n, seed);
    let gt = corpus::ground_truth(protocol, &trace);
    let seg = truth::truth_segmentation(&trace, &gt);
    let result = FieldTypeClusterer::default()
        .cluster_trace(&trace, &seg)
        .unwrap();
    (trace, result)
}

#[test]
fn semantics_cover_every_protocol() {
    for protocol in [Protocol::Dhcp, Protocol::Dns, Protocol::Smb] {
        let (trace, result) = pipeline(protocol, 60, 3);
        let sems = interpret(&result, &trace, &SemanticsConfig::default());
        assert_eq!(
            sems.len(),
            result.clustering.n_clusters() as usize,
            "{protocol}"
        );
        // At least half the clusters get a non-Unknown hypothesis.
        let known = sems
            .iter()
            .filter(|s| s.hypothesis != SemanticHypothesis::Unknown)
            .count();
        assert!(
            known * 2 >= sems.len(),
            "{protocol}: {known}/{} known",
            sems.len()
        );
    }
}

#[test]
fn dhcp_addresses_are_recognized() {
    // DHCP carries its clients' own IPs (yiaddr/requested-IP options);
    // with a trace where the address fields form their own cluster the
    // Address rule must fire. (Seed chosen so DBSCAN separates them;
    // small DHCP traces can also collapse into one mixed cluster, which
    // is a clustering property, not a semantics bug.)
    let (trace, result) = pipeline(Protocol::Dhcp, 100, 7);
    let sems = interpret(&result, &trace, &SemanticsConfig::default());
    assert!(
        sems.iter()
            .any(|s| s.hypothesis == SemanticHypothesis::Address),
        "{sems:?}"
    );
}

#[test]
fn value_models_generalize_across_seeds() {
    // Models learned on one NTP capture should score a *different* NTP
    // capture higher than random noise.
    let (_, result) = pipeline(Protocol::Ntp, 80, 5);
    let detector = MisbehaviorDetector::from_clustering(&result);
    let fresh = corpus::build_trace(Protocol::Ntp, 10, 99);
    let nem = segment::nemesys::Nemesys::default();
    let mut genuine_total = 0.0;
    let mut random_total = 0.0;
    let mut rng = StdRng::seed_from_u64(1);
    for m in &fresh {
        let segs = nem.segment_message(m.payload());
        genuine_total += detector.score_message(m.payload(), &segs);
        let random: Vec<u8> = (0..m.payload().len())
            .map(|_| rand::Rng::gen(&mut rng))
            .collect();
        let rsegs = nem.segment_message(&random);
        random_total += detector.score_message(&random, &rsegs);
    }
    assert!(
        genuine_total > random_total,
        "genuine {genuine_total} vs random {random_total}"
    );
}

#[test]
fn fuzz_candidates_have_observed_lengths() {
    let (_, result) = pipeline(Protocol::Dns, 60, 6);
    let models = ValueModel::per_cluster(&result);
    let mut rng = StdRng::seed_from_u64(2);
    for model in &models {
        for _ in 0..5 {
            let v = model.sample(&mut rng);
            assert!(model.lengths().iter().any(|&(l, _)| l == v.len()));
        }
    }
}

#[test]
fn message_types_and_report_end_to_end() {
    let protocol = Protocol::Smb;
    let trace = corpus::build_trace(protocol, 64, 7);
    let gt = corpus::ground_truth(protocol, &trace);
    let seg = truth::truth_segmentation(&trace, &gt);
    let result = FieldTypeClusterer::default()
        .cluster_trace(&trace, &seg)
        .unwrap();
    let mt = identify_message_types(&trace, &seg, &MessageTypeConfig::default()).unwrap();

    // The 8 SMB message types should be found (±2 tolerance for small
    // trace effects).
    let true_types: std::collections::HashSet<&str> = trace
        .iter()
        .map(|m| protocol.message_type(m.payload()).unwrap())
        .collect();
    let found = mt.clustering.n_clusters() as i64;
    assert!(
        (found - true_types.len() as i64).abs() <= 2,
        "{found} clusters vs {} true types",
        true_types.len()
    );

    let sems = interpret(&result, &trace, &SemanticsConfig::default());
    let md = render_markdown(
        &trace,
        &result,
        &sems,
        Some(&mt),
        &ReportOptions {
            examples_per_cluster: 2,
            include_value_models: true,
        },
    );
    assert!(md.contains("## Message types"));
    assert!(md.contains("## Value domains"));
    assert!(md.lines().count() > 20);
}
