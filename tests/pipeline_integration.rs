//! Cross-crate integration: full pipeline over every protocol with
//! ground-truth segmentation (the paper's Table I setting, small scale).

use fieldclust::{evaluate, truth, FieldTypeClusterer};
use protocols::{corpus, Protocol};

fn run_protocol(protocol: Protocol, n: usize) -> fieldclust::Evaluation {
    let trace = corpus::build_trace(protocol, n, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(protocol, &trace);
    let seg = truth::truth_segmentation(&trace, &gt);
    let result = FieldTypeClusterer::default()
        .cluster_trace(&trace, &seg)
        .unwrap_or_else(|e| panic!("{protocol}: {e}"));
    evaluate(&result, &trace, &gt)
}

#[test]
fn every_protocol_clusters_from_ground_truth() {
    for protocol in Protocol::ALL {
        // AU reports carry hundreds of measurement segments each; keep
        // the quadratic dissimilarity matrix small in debug builds.
        let n = if protocol == Protocol::Au { 12 } else { 60 };
        let eval = run_protocol(protocol, n);
        assert!(eval.n_clusters >= 1, "{protocol}: no clusters");
        assert!(eval.n_segments >= 4, "{protocol}: too few segments");
        assert!(
            (0.0..=1.0).contains(&eval.metrics.precision),
            "{protocol}: precision out of range"
        );
        assert!(eval.coverage.ratio() > 0.0, "{protocol}: zero coverage");
    }
}

#[test]
fn fixed_structure_protocol_scores_high_precision() {
    // NTP from true fields is the paper's showcase (P = 1.00 in Table I).
    let eval = run_protocol(Protocol::Ntp, 100);
    assert!(
        eval.metrics.precision >= 0.6,
        "ntp precision = {} (clusters = {})",
        eval.metrics.precision,
        eval.n_clusters
    );
}

#[test]
fn larger_traces_do_not_collapse() {
    let small = run_protocol(Protocol::Dns, 40);
    let large = run_protocol(Protocol::Dns, 120);
    // More messages bring more unique segments, never fewer.
    assert!(large.n_segments >= small.n_segments);
}

#[test]
fn coverage_accounts_for_short_and_noise_segments() {
    let trace = corpus::build_trace(Protocol::Ntp, 80, 3);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    let seg = truth::truth_segmentation(&trace, &gt);
    let result = FieldTypeClusterer::default()
        .cluster_trace(&trace, &seg)
        .unwrap();
    let cov = result.coverage(&trace);

    // Reconstruct the upper bound by hand: clusterable instance bytes.
    let clusterable = result.store.clusterable_instance_bytes();
    assert!(cov.covered_bytes <= clusterable);
    assert_eq!(cov.total_bytes as usize, trace.total_payload_bytes());
}

#[test]
fn epsilon_is_reported_and_positive() {
    for protocol in [Protocol::Ntp, Protocol::Dns, Protocol::Nbns] {
        let eval = run_protocol(protocol, 80);
        assert!(
            eval.epsilon > 0.0 && eval.epsilon < 1.0,
            "{protocol}: eps = {}",
            eval.epsilon
        );
    }
}
