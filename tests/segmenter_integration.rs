//! Cross-crate integration: the pipeline on heuristic segmentations
//! (the paper's Table II setting, small scale).

use fieldclust::{evaluate, FieldTypeClusterer};
use protocols::{corpus, Protocol};
use segment::csp::Csp;
use segment::nemesys::Nemesys;
use segment::netzob::Netzob;
use segment::{SegmentError, Segmenter, WorkBudget};

fn cluster_with(
    segmenter: &dyn Segmenter,
    protocol: Protocol,
    n: usize,
) -> Option<fieldclust::Evaluation> {
    let trace = corpus::build_trace(protocol, n, corpus::DEFAULT_SEED);
    let segmentation = segmenter.segment_trace(&trace).ok()?;
    let result = FieldTypeClusterer::default()
        .cluster_trace(&trace, &segmentation)
        .ok()?;
    let gt = corpus::ground_truth(protocol, &trace);
    Some(evaluate(&result, &trace, &gt))
}

#[test]
fn nemesys_segments_cluster_for_all_protocols() {
    for protocol in Protocol::ALL {
        // Keep AU small: its reports explode the unique-segment count.
        let n = if protocol == Protocol::Au { 12 } else { 50 };
        let eval = cluster_with(&Nemesys::default(), protocol, n)
            .unwrap_or_else(|| panic!("{protocol}: pipeline failed"));
        assert!(eval.n_clusters >= 1, "{protocol}");
        assert!((0.0..=1.0).contains(&eval.metrics.f_score), "{protocol}");
    }
}

#[test]
fn csp_needs_variance_small_trace_weaker() {
    // The paper: "CSP is more dependent on the variance in the trace, it
    // is best applied to large traces."
    let small = cluster_with(&Csp::default(), Protocol::Dns, 30);
    let large = cluster_with(&Csp::default(), Protocol::Dns, 120);
    let (small, large) = (small.expect("small run"), large.expect("large run"));
    assert!(large.n_segments >= small.n_segments);
}

#[test]
fn netzob_on_fixed_structure_scores_reasonably() {
    let eval = cluster_with(&Netzob::default(), Protocol::Ntp, 40).expect("netzob run");
    assert!(
        eval.metrics.precision > 0.3,
        "ntp/netzob precision = {}",
        eval.metrics.precision
    );
}

#[test]
fn budget_failures_propagate_like_paper_fails_cells() {
    // A tiny budget makes Netzob abort — that's the Table II "fails".
    let trace = corpus::build_trace(Protocol::Smb, 60, 1);
    let tight = Netzob {
        budget: WorkBudget::new(100),
        ..Netzob::default()
    };
    assert!(matches!(
        tight.segment_trace(&trace),
        Err(SegmentError::BudgetExceeded { .. })
    ));
}

#[test]
fn heuristic_recall_stays_below_truth_recall() {
    // Imperfect boundaries can only lose true pairs (Table I vs II trend
    // in the paper). Allow a little slack for small-trace variance.
    let trace = corpus::build_trace(Protocol::Ntp, 80, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    let truth_seg = fieldclust::truth::truth_segmentation(&trace, &gt);
    let truth_eval = {
        let r = FieldTypeClusterer::default()
            .cluster_trace(&trace, &truth_seg)
            .unwrap();
        evaluate(&r, &trace, &gt)
    };
    let heur_eval = {
        let seg = Nemesys::default().segment_trace(&trace).unwrap();
        let r = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        evaluate(&r, &trace, &gt)
    };
    assert!(
        heur_eval.metrics.recall <= truth_eval.metrics.recall + 0.25,
        "heuristic recall {} vs truth {}",
        heur_eval.metrics.recall,
        truth_eval.metrics.recall
    );
}
