//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the real crate's API that this workspace
//! uses: an immutable, cheaply cloneable byte container. Static slices
//! are stored without allocation; owned data is reference-counted so
//! clones share one buffer, matching the real crate's semantics for the
//! operations exercised here.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Self {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            repr: Repr::Static(bytes),
        }
    }

    /// Copies a slice into a new reference-counted buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The underlying bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            repr: Repr::Shared(Arc::from(v.into_boxed_slice())),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self {
            repr: Repr::Shared(Arc::from(b)),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.as_slice()
                .iter()
                .map(|&b| serde::Value::UInt(b as u64))
                .collect(),
        )
    }
}

impl serde::Deserialize for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_and_compare_equal() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn static_roundtrip() {
        let s = Bytes::from_static(b"abc");
        assert_eq!(s.to_vec(), b"abc".to_vec());
        assert!(!s.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
