//! Offline stand-in for `criterion`.
//!
//! Provides the benchmarking API surface this workspace uses, measuring
//! with `std::time::Instant`: each benchmark is calibrated to a target
//! sample duration, timed over several samples, and reported as the
//! median nanoseconds per iteration on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Times a routine over a requested number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times, recording the elapsed wall
    /// clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| routine(b, input));
        self
    }

    /// Benchmarks a closed routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut routine);
        self
    }

    /// Finishes the group (reporting happens eagerly per benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: one untimed-ish pass sizes the per-sample batch.
        routine(&mut bencher);
        let per_iter_ns = bencher.elapsed.as_nanos().max(1);
        const TARGET_SAMPLE_NS: u128 = 5_000_000;
        let iters = (TARGET_SAMPLE_NS / per_iter_ns).clamp(1, 10_000_000) as u64;
        // Keep wall-clock bounded regardless of the configured sample
        // count; the median stabilizes quickly.
        let samples = self.sample_size.clamp(5, 30);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.iters = iters;
            routine(&mut bencher);
            per_iter.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        println!(
            "bench {}/{}: median {:.1} ns/iter ({} iters x {} samples)",
            self.name, id, median, iters, samples
        );
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark executable.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags such as `--bench`; ignore them.
            $($group();)+
        }
    };
}
