//! `any::<T>()` — full-range strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Samples a full-range value.
    fn generate(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn generate(rng: &mut TestRng) -> Self {
        // Finite full-range values; non-finite specials are not useful
        // for the numeric properties in this workspace.
        let v = rng.next_f64();
        (v - 0.5) * 2.0 * 1e12
    }
}

impl Arbitrary for f32 {
    fn generate(rng: &mut TestRng) -> Self {
        f64::generate(rng) as f32
    }
}

impl Arbitrary for char {
    fn generate(rng: &mut TestRng) -> Self {
        char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('a')
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn generate(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::generate(rng))
    }
}
