//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open range of collection sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.end <= self.start + 1 {
            self.start
        } else {
            self.start + rng.below(self.end - self.start)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            start: *r.start(),
            end: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet`s. The target size is drawn from `size`; if
/// the element space is too small to reach it, a best-effort smaller
/// set is produced (matching proptest's tolerance for duplicates).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 20 + 20 {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}
