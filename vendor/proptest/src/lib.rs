//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace uses.
//! Strategies sample values from a deterministic PRNG; the runner
//! executes a fixed number of cases per test. Shrinking is not
//! implemented — a failing case panics with its case number and seed so
//! it can be reproduced by re-running (the sampling is deterministic).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace (`use proptest::prelude::*` brings it in).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors proptest's `prelude::prop` module shorthand.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a proptest body, failing the current case
/// (rather than panicking) so the runner can report it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (it is retried with fresh inputs and does
/// not count toward the failure budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Picks uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(&config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strategy), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}
