//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying a bounded number
    /// of times before giving up with the last sample.
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate rejected 1000 consecutive samples")
    }
}

/// Uniform choice among strategies of one type (`prop_oneof!`).
pub struct Union<S>(Vec<S>);

impl<S: Strategy> Union<S> {
    /// Builds from a non-empty list of alternatives.
    pub fn new(options: Vec<S>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Self(options)
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.0.len());
        self.0[i].sample(rng)
    }
}

/// Every element strategy in a `Vec` is sampled, yielding a `Vec` of
/// values (used for per-item dependent strategies).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128 + self.start as i128;
                v as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128 + start as i128;
                v as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}
