//! Case runner and error plumbing for the `proptest!` macro.

/// Deterministic SplitMix64 PRNG driving all strategy sampling.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// A failed property.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// A rejected input set.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fail(r) => write!(f, "property failed: {r}"),
            Self::Reject(r) => write!(f, "inputs rejected: {r}"),
        }
    }
}

/// Runner configuration (subset of proptest's `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Executes one property over `config.cases` sampled inputs. Sampling
/// is seeded from the test name, so a failure reproduces on re-run.
pub fn run(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::new(fnv1a(name.as_bytes()));
    let mut accepted: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases) * 64 + 1024;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("[{name}] failed after {accepted} passing case(s): {msg}")
            }
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "[{name}] gave up: {rejected} rejected inputs for {accepted} accepted cases"
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
