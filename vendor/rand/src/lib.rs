//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the real crate that this workspace uses,
//! with bit-compatible algorithms so seeded corpora generate the same
//! byte streams as the real `rand 0.8` + `rand_chacha` pair:
//!
//! - [`rngs::StdRng`] is ChaCha with 12 rounds, buffered four blocks at
//!   a time like `rand_chacha`'s `BlockRng`, and
//!   [`SeedableRng::seed_from_u64`] expands the seed with the same
//!   PCG32 sequence as `rand_core 0.6`.
//! - `gen_range` uses the widening-multiply rejection sampler from
//!   `rand 0.8`'s `UniformInt`, and `gen_bool` the fixed-point
//!   comparison from its `Bernoulli`.

pub mod rngs;

pub use rngs::StdRng;

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seeding constructors (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via the PCG32 stream used by
    /// `rand_core 0.6`, then seeds normally.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // rand 0.8 Bernoulli: 64-bit fixed-point threshold comparison.
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The `Standard` distribution: full-range uniform values.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_from_u32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}

macro_rules! standard_from_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_from_u32!(u8, u16, u32, i8, i16, i32);
standard_from_u64!(u64, i64, usize, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 samples a full u32 and keeps the low bit.
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges that `gen_range` accepts (subset of `rand::distributions::uniform::SampleRange`).
///
/// The single blanket impl per range shape (mirroring the real crate)
/// lets type inference unify the range's element type with
/// `gen_range`'s output type.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range_inclusive(rng, start, end)
    }
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample in `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $unsigned:ty, $wide:ty, $exact_zone:expr);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let range = (high as $unsigned).wrapping_sub(low as $unsigned) as u64;
                let v = sample_int_below::<R, $wide>(range, $exact_zone, rng) as $unsigned as $t;
                low.wrapping_add(v)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                // Width-limited arithmetic like the real crate: a range
                // spanning the whole type wraps to 0 and means "any raw
                // draw is acceptable".
                let range = (high as $unsigned)
                    .wrapping_sub(low as $unsigned)
                    .wrapping_add(1) as u64;
                if range == 0 {
                    return (<$wide>::draw(rng) as $unsigned) as $t;
                }
                let v = sample_int_below::<R, $wide>(range, $exact_zone, rng) as $unsigned as $t;
                low.wrapping_add(v)
            }
        }
    )*};
}

/// The 32- or 64-bit sampling domain rand 0.8 uses per integer width
/// (u8/u16/u32 sample from a full u32; u64/usize from a full u64).
trait SampleDomain {
    const DOMAIN_MAX: u64;
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64;
    /// Widening multiply of a raw draw by `range`, split into (hi, lo).
    fn wmul(v: u64, range: u64) -> (u64, u64);
    /// rand 0.8's conservative `sample_single` rejection zone:
    /// `(range << range.leading_zeros()) - 1` at the domain width.
    fn approx_zone(range: u64) -> u64;
}

enum Domain32 {}
enum Domain64 {}

impl SampleDomain for Domain32 {
    const DOMAIN_MAX: u64 = u32::MAX as u64;
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        u64::from(rng.next_u32())
    }
    fn wmul(v: u64, range: u64) -> (u64, u64) {
        let m = v * range; // both ≤ u32::MAX: exact in u64
        (m >> 32, m & 0xffff_ffff)
    }
    fn approx_zone(range: u64) -> u64 {
        let r = range as u32;
        u64::from((r << r.leading_zeros()).wrapping_sub(1))
    }
}

impl SampleDomain for Domain64 {
    const DOMAIN_MAX: u64 = u64::MAX;
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
    fn wmul(v: u64, range: u64) -> (u64, u64) {
        let m = u128::from(v) * u128::from(range);
        ((m >> 64) as u64, m as u64)
    }
    fn approx_zone(range: u64) -> u64 {
        (range << range.leading_zeros()).wrapping_sub(1)
    }
}

/// rand 0.8's `UniformInt::sample_single_inclusive`: widening multiply
/// with a rejection zone, returning a uniform value in `[0, range)`.
///
/// The real crate computes the exact modulus-based zone for 8- and
/// 16-bit types but the cheaper `range << leading_zeros` approximation
/// for wider ones; reproducing that split is what keeps the raw-draw
/// consumption (and thus the whole downstream stream) identical.
fn sample_int_below<R: RngCore + ?Sized, D: SampleDomain>(
    range: u64,
    exact_zone: bool,
    rng: &mut R,
) -> u64 {
    debug_assert!(range > 0 && range <= D::DOMAIN_MAX);
    let zone = if exact_zone {
        D::DOMAIN_MAX - (D::DOMAIN_MAX - range + 1) % range
    } else {
        D::approx_zone(range)
    };
    loop {
        let (hi, lo) = D::wmul(D::draw(rng), range);
        if lo <= zone {
            return hi;
        }
    }
}

uniform_int! {
    u8 => u8, Domain32, true;
    u16 => u16, Domain32, true;
    u32 => u32, Domain32, false;
    i8 => u8, Domain32, true;
    i16 => u16, Domain32, true;
    i32 => u32, Domain32, false;
    u64 => u64, Domain64, false;
    i64 => u64, Domain64, false;
    usize => usize, Domain64, false;
    isize => usize, Domain64, false;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let scale = high - low;
        loop {
            // rand 0.8 UniformFloat: 52 fraction bits into [1, 2), then
            // shift down to [0, 1).
            let bits = (rng.next_u64() >> 12) | (1023u64 << 52);
            let value0_1 = f64::from_bits(bits) - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
        }
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_range(rng, low, f64::from_bits(high.to_bits() + 1))
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let scale = high - low;
        loop {
            let bits = (rng.next_u32() >> 9) | (127u32 << 23);
            let value0_1 = f32::from_bits(bits) - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
        }
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_range(rng, low, f32::from_bits(high.to_bits() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_stream_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u16 = rng.gen_range(300..=420);
            assert!((300..=420).contains(&w));
            let x: usize = rng.gen_range(0..3usize);
            assert!(x < 3);
            let f: f64 = rng.gen_range(-0.2..0.2);
            assert!((-0.2..0.2).contains(&f));
        }
    }

    #[test]
    fn fill_is_deterministic_and_covers() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut ba = [0u8; 37];
        let mut bb = [0u8; 37];
        a.fill(&mut ba[..]);
        b.fill(&mut bb[..]);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
