//! Standard RNG: ChaCha with 12 rounds, matching `rand 0.8`'s `StdRng`
//! (`rand_chacha::ChaCha12Rng` behind `rand_core::block::BlockRng`).

use crate::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// rand_chacha buffers four ChaCha blocks per refill; the buffer length
/// matters because `next_u64` straddles refills at the buffer boundary.
const BUFFER_WORDS: usize = 4 * BLOCK_WORDS;

/// The standard seeded RNG (ChaCha12).
#[derive(Clone, Debug)]
pub struct StdRng {
    key: [u32; 8],
    counter: u64,
    results: [u32; BUFFER_WORDS],
    index: usize,
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            results: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }
}

impl StdRng {
    fn refill(&mut self) {
        for block in 0..4 {
            let out: &mut [u32] = &mut self.results[block * BLOCK_WORDS..(block + 1) * BLOCK_WORDS];
            chacha12_block(&self.key, self.counter, out.try_into().unwrap());
            self.counter = self.counter.wrapping_add(1);
        }
        self.index = 0;
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
        }
        let v = self.results[self.index];
        self.index += 1;
        v
    }

    // Mirrors rand_core's BlockRng::next_u64, including the case where
    // the two halves straddle a buffer refill.
    fn next_u64(&mut self) -> u64 {
        let read = |results: &[u32; BUFFER_WORDS], i: usize| {
            u64::from(results[i]) | (u64::from(results[i + 1]) << 32)
        };
        if self.index < BUFFER_WORDS - 1 {
            let v = read(&self.results, self.index);
            self.index += 2;
            v
        } else if self.index >= BUFFER_WORDS {
            self.refill();
            let v = read(&self.results, 0);
            self.index = 2;
            v
        } else {
            let lo = u64::from(self.results[BUFFER_WORDS - 1]);
            self.refill();
            let hi = u64::from(self.results[0]);
            self.index = 1;
            (hi << 32) | lo
        }
    }

    // Mirrors rand_core's fill_via_u32_chunks: whole little-endian
    // words, a partially consumed trailing word contributing its
    // leading bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.index >= BUFFER_WORDS {
                self.refill();
            }
            let remaining = &mut dest[filled..];
            let available = &self.results[self.index..];
            let take_words = remaining.len().div_ceil(4).min(available.len());
            for (w, chunk) in available[..take_words].iter().zip(remaining.chunks_mut(4)) {
                let bytes = w.to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
                filled += chunk.len();
            }
            self.index += take_words;
        }
    }
}

/// One ChaCha block with 12 rounds; 64-bit counter in words 12–13,
/// zero nonce in words 14–15 (rand_chacha's layout).
fn chacha12_block(key: &[u32; 8], counter: u64, out: &mut [u32; BLOCK_WORDS]) {
    let mut state = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..6 {
        // Column round.
        quarter(&mut state, 0, 4, 8, 12);
        quarter(&mut state, 1, 5, 9, 13);
        quarter(&mut state, 2, 6, 10, 14);
        quarter(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut state, 0, 5, 10, 15);
        quarter(&mut state, 1, 6, 11, 12);
        quarter(&mut state, 2, 7, 8, 13);
        quarter(&mut state, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
        *o = s.wrapping_add(*i);
    }
}

#[inline(always)]
fn quarter(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector, run with 20 rounds to validate the
    /// quarter-round core and state layout (the key-stream path is the
    /// same for 12 rounds).
    #[test]
    fn chacha_core_matches_rfc8439_structure() {
        let key: [u32; 8] = [
            0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918,
            0x1f1e1d1c,
        ];
        // With a zero nonce the RFC vector does not apply verbatim, so
        // assert structural properties instead: determinism and
        // counter-sensitivity.
        let mut a = [0u32; 16];
        let mut b = [0u32; 16];
        let mut c = [0u32; 16];
        chacha12_block(&key, 1, &mut a);
        chacha12_block(&key, 1, &mut b);
        chacha12_block(&key, 2, &mut c);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    /// ChaCha12 keystream vector (zero key, zero nonce) from the
    /// Strombergson chacha-test-vectors draft — the same vector
    /// `rand_chacha` pins `ChaCha12Rng` to. This checks key parsing,
    /// the 12-round schedule, word order, and LE output at once.
    #[test]
    fn matches_chacha12_reference_keystream() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let words: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(words, [0x6a9af49b, 0x53f95507, 0x12ce1f81, 0xd583265f]);
        let stream: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        assert_eq!(
            stream,
            [
                0x9b, 0xf4, 0x9a, 0x6a, 0x07, 0x55, 0xf9, 0x53, 0x81, 0x1f, 0xce, 0x12, 0x5f, 0x26,
                0x83, 0xd5
            ]
        );
    }

    #[test]
    fn next_u64_straddles_buffer_boundary_consistently() {
        let mut word_rng = StdRng::seed_from_u64(9);
        let mut mixed_rng = StdRng::seed_from_u64(9);
        // Consume 63 words so the next u64 straddles the refill.
        let words: Vec<u32> = (0..BUFFER_WORDS + 1).map(|_| word_rng.next_u32()).collect();
        for _ in 0..(BUFFER_WORDS - 1) / 2 {
            mixed_rng.next_u64();
        }
        mixed_rng.next_u32();
        let straddled = mixed_rng.next_u64();
        let expected = u64::from(words[BUFFER_WORDS - 1]) | (u64::from(words[BUFFER_WORDS]) << 32);
        assert_eq!(straddled, expected);
    }
}
