//! Offline stand-in for `serde`.
//!
//! The real serde separates data structures from data formats through a
//! visitor-based `Serializer` contract. This workspace only ever
//! serializes plain records to JSON (`serde_json::to_string_pretty`), so
//! the stand-in collapses the contract to one self-describing
//! [`Value`] tree: `Serialize` converts a value into a `Value`, and the
//! vendored `serde_json` renders that tree. The `Serialize`/`Deserialize`
//! derive macros come from the vendored `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A floating point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

/// Conversion of a data structure into the serialized [`Value`] model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Marker for types that could be deserialized.
///
/// Nothing in this workspace deserializes, so the trait carries no
/// behavior; deriving it only keeps `#[derive(Deserialize)]` attributes
/// compiling.
pub trait Deserialize {}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl Deserialize for String {}
impl Deserialize for bool {}
impl Deserialize for f32 {}
impl Deserialize for f64 {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}
