//! Offline stand-in for `serde_derive`.
//!
//! Parses the deriving item directly from the token stream (no `syn`
//! or `quote` available offline) and emits impls against the vendored
//! `serde` crate's value model. Supports what this workspace derives:
//! non-generic structs with named fields, and enums whose variants are
//! unit or tuple variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {} {{\n    fn to_value(&self) -> ::serde::Value {{\n",
        item.name
    ));
    match &item.kind {
        Kind::Struct(fields) => {
            out.push_str("        ::serde::Value::Object(vec![\n");
            for f in fields {
                out.push_str(&format!(
                    "            (String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),\n"
                ));
            }
            out.push_str("        ])\n");
        }
        Kind::Enum(variants) => {
            out.push_str("        match self {\n");
            for (vname, arity) in variants {
                match arity {
                    0 => out.push_str(&format!(
                        "            {}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),\n",
                        item.name
                    )),
                    1 => out.push_str(&format!(
                        "            {}::{vname}(f0) => ::serde::Value::Object(vec![(String::from(\"{vname}\"), ::serde::Serialize::to_value(f0))]),\n",
                        item.name
                    )),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        out.push_str(&format!(
                            "            {}::{vname}({}) => ::serde::Value::Object(vec![(String::from(\"{vname}\"), ::serde::Value::Array(vec![{}]))]),\n",
                            item.name,
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                }
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out.parse()
        .expect("serde_derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}\n", item.name)
        .parse()
        .expect("serde_derive: generated impl must parse")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named field identifiers, in declaration order.
    Struct(Vec<String>),
    /// `(variant name, tuple arity)`; arity 0 is a unit variant.
    Enum(Vec<(String, usize)>),
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    let body = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive stand-in: generic type `{name}` is not supported")
            }
            Some(_) => i += 1,
            None => panic!("serde_derive stand-in: `{name}` has no braced body"),
        }
    };
    let kind = match kw.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("serde_derive stand-in: unsupported item kind `{other}`"),
    };
    Item { name, kind }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        fields.push(expect_ident(&toks, &mut i));
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde_derive stand-in: expected `:` after field name"),
        }
        skip_type_until_comma(&toks, &mut i);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<(String, usize)> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let vname = expect_ident(&toks, &mut i);
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = tuple_arity(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde_derive stand-in: struct variant `{vname}` is not supported")
                }
                _ => {}
            }
        }
        // Skip any discriminant up to the separating comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((vname, arity));
    }
    variants
}

/// Number of comma-separated elements in a tuple variant's parentheses.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0;
    let mut depth = 0i32;
    let mut pending = false;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    arity += 1;
                    pending = false;
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    arity + usize::from(pending)
}

/// Skips `#[...]` attributes (including doc comments) and `pub`
/// visibility, advancing `i` past them.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skips a type expression, stopping after the field-separating comma.
/// Commas nested in `<...>` or any bracketed group do not terminate.
fn skip_type_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stand-in: expected identifier, found {other:?}"),
    }
}
