//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` crate's [`serde::Value`] model as JSON
//! text. Only the entry point this workspace calls is provided:
//! [`to_string_pretty`], matching serde_json's 2-space pretty format.

use std::fmt;

/// Serialization error. The stand-in serializer is infallible, but the
/// type is kept so call sites written against the real crate compile.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

fn write_value(v: &serde::Value, indent: usize, out: &mut String) {
    use serde::Value;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(indent + 1, out);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push('}');
        }
        other => write_scalar_or_empty(other, out),
    }
}

fn write_compact(v: &serde::Value, out: &mut String) {
    use serde::Value;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
        other => write_scalar_or_empty(other, out),
    }
}

fn write_scalar_or_empty(v: &serde::Value, out: &mut String) {
    use serde::Value;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(_) => out.push_str("[]"),
        Value::Object(_) => out.push_str("{}"),
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // serde_json writes non-finite floats as null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn pretty_format_matches_serde_json_layout() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(0.5), Value::Float(2.0)]),
            ),
            ("c".into(), Value::Object(vec![])),
        ]);
        let mut out = String::new();
        write_value(&v, 0, &mut out);
        assert_eq!(
            out,
            "{\n  \"a\": 1,\n  \"b\": [\n    0.5,\n    2.0\n  ],\n  \"c\": {}\n}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_string("a\"b\\c\nd", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}
